#ifndef KONDO_LINT_RULES_H_
#define KONDO_LINT_RULES_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/token.h"

namespace kondo {
namespace lint {

/// One lint diagnostic, anchored to a file and 1-based line.
struct Finding {
  std::string rule;  // "R1".."R4", or "LINT" for linter-level errors.
  std::string file;  // Repo-relative path.
  int line = 0;
  std::string message;
};

/// Everything the per-file rules need to know about one translation unit.
struct FileContext {
  std::string path;
  const LexedFile* lexed = nullptr;
  /// True when the file belongs to the determinism-critical closure (a
  /// determinism-critical module, or transitively included by one).
  bool critical = false;
  /// Names declared with an unordered container type, merged from this file
  /// and its direct includes (so a .cc sees the members of its header).
  const std::set<std::string>* unordered_names = nullptr;
};

/// R1 — banned nondeterminism APIs in determinism-critical files. Flags
/// `rand`-family calls, `std::random_device`, wall-clock reads
/// (`system_clock`, `time(nullptr)`, `gettimeofday`), and thread identity
/// as data (`this_thread::get_id`, `getpid`): any of these in a
/// result-affecting path silently breaks bit-identical replay.
void CheckR1(const FileContext& ctx, std::vector<Finding>* findings);

/// R2 — unordered-container iteration hazards. Pointer-keyed unordered
/// containers are flagged unconditionally (their order varies run to run
/// even on one machine); range-for iteration over an unordered container is
/// flagged in determinism-critical files (order is stable only per
/// platform/libc++ version — a refactor or toolchain bump reorders
/// serialization, lineage, and IndexSet construction silently).
void CheckR2(const FileContext& ctx, std::vector<Finding>* findings);

/// R3 — suppressed or discarded IO-writer status. `Status` is
/// `[[nodiscard]]`, so the compiler rejects plain discards; this rule
/// closes the remaining holes: `(void)` / `static_cast<void>` /
/// `std::ignore =` suppressions of writer calls (Append/AppendAll/Close/
/// Flush/SealBlock/Collect), and bare discarded calls on writer-named
/// receivers. A swallowed short write turns a torn lineage store into
/// silent data loss.
void CheckR3(const FileContext& ctx, std::vector<Finding>* findings);

/// R4 — mutex members without Clang thread-safety annotations. A class
/// declaring a mutex/condition-variable member must carry at least one
/// KONDO_* thread-safety annotation (typically KONDO_GUARDED_BY on the
/// fields the mutex protects), keeping `-Wthread-safety` meaningful.
void CheckR4(const FileContext& ctx, std::vector<Finding>* findings);

/// R6 — wire-tainted lengths reaching allocation. Inside critical files,
/// a variable filled by a cursor length read (ReadU16/ReadU32/ReadU64/
/// ReadVarint) is tainted until it appears in a bounds comparison; a
/// tainted value reaching `resize`/`reserve`/`new[]`/index arithmetic is
/// flagged. A hostile 4-byte count otherwise commands an allocation five
/// orders of magnitude larger than the frame that carried it.
/// Intraprocedural: a helper that validates internally (fleet_protocol's
/// ReadCount) neither taints nor clears its caller's variables.
void CheckR6(const FileContext& ctx, std::vector<Finding>* findings);

/// R5 — lock-acquisition-order analysis. Unlike the per-file rules, R5 is
/// global: every critical file's function bodies feed one acquisition-order
/// graph (an edge A -> B for each site that acquires B while holding A),
/// and `Finish` reports every cycle — a potential deadlock — with the full
/// witness path, plus every `CondVar::Wait` reached while a second mutex is
/// held (Wait releases only its own mutex, so a notifier needing the other
/// lock deadlocks). Lock identity is the spelled expression qualified by
/// the enclosing class (member functions) or function (free functions); no
/// aliasing analysis. `kondo-lint: allow(R5)` on a nested acquisition line
/// suppresses cycles witnessed through it; on a Wait line, that site.
class LockOrderCollector {
 public:
  /// Feeds one file's lock behaviour into the graph. Non-critical files
  /// are ignored.
  void AddFile(const FileContext& ctx);

  /// Emits cycle and wait-while-holding findings (unsorted; the caller
  /// owns final ordering). Returns the number of findings suppressed by
  /// allow directives recorded during AddFile.
  int Finish(std::vector<Finding>* findings);

 private:
  struct Edge {
    std::string from;      // Qualified lock held at the acquisition.
    std::string to;        // Qualified lock being acquired.
    std::string file;      // Witness location of the nested acquisition.
    int line = 0;
    std::string function;  // Function containing the witness.
    bool suppressed = false;
  };
  /// First witness per ordered pair; map keys make every traversal
  /// deterministic.
  std::map<std::pair<std::string, std::string>, Edge> edges_;
  std::vector<Finding> wait_findings_;
  int suppressed_ = 0;
};

/// Runs every rule in `enabled` over `ctx`, applies the file's suppression
/// directives, and appends surviving findings. Malformed `kondo-lint:`
/// directives are reported as rule "LINT" (never suppressible) so a typo
/// cannot silently disable a rule. Returns the number of findings dropped
/// by suppression.
int CheckFile(const FileContext& ctx, const std::set<std::string>& enabled,
              std::vector<Finding>* findings);

/// Names declared in `lexed` with an unordered container type (used to seed
/// FileContext::unordered_names across the include graph).
std::set<std::string> CollectUnorderedDeclNames(const LexedFile& lexed);

}  // namespace lint
}  // namespace kondo

#endif  // KONDO_LINT_RULES_H_
