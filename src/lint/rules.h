#ifndef KONDO_LINT_RULES_H_
#define KONDO_LINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "lint/token.h"

namespace kondo {
namespace lint {

/// One lint diagnostic, anchored to a file and 1-based line.
struct Finding {
  std::string rule;  // "R1".."R4", or "LINT" for linter-level errors.
  std::string file;  // Repo-relative path.
  int line = 0;
  std::string message;
};

/// Everything the per-file rules need to know about one translation unit.
struct FileContext {
  std::string path;
  const LexedFile* lexed = nullptr;
  /// True when the file belongs to the determinism-critical closure (a
  /// determinism-critical module, or transitively included by one).
  bool critical = false;
  /// Names declared with an unordered container type, merged from this file
  /// and its direct includes (so a .cc sees the members of its header).
  const std::set<std::string>* unordered_names = nullptr;
};

/// R1 — banned nondeterminism APIs in determinism-critical files. Flags
/// `rand`-family calls, `std::random_device`, wall-clock reads
/// (`system_clock`, `time(nullptr)`, `gettimeofday`), and thread identity
/// as data (`this_thread::get_id`, `getpid`): any of these in a
/// result-affecting path silently breaks bit-identical replay.
void CheckR1(const FileContext& ctx, std::vector<Finding>* findings);

/// R2 — unordered-container iteration hazards. Pointer-keyed unordered
/// containers are flagged unconditionally (their order varies run to run
/// even on one machine); range-for iteration over an unordered container is
/// flagged in determinism-critical files (order is stable only per
/// platform/libc++ version — a refactor or toolchain bump reorders
/// serialization, lineage, and IndexSet construction silently).
void CheckR2(const FileContext& ctx, std::vector<Finding>* findings);

/// R3 — suppressed or discarded IO-writer status. `Status` is
/// `[[nodiscard]]`, so the compiler rejects plain discards; this rule
/// closes the remaining holes: `(void)` / `static_cast<void>` /
/// `std::ignore =` suppressions of writer calls (Append/AppendAll/Close/
/// Flush/SealBlock/Collect), and bare discarded calls on writer-named
/// receivers. A swallowed short write turns a torn lineage store into
/// silent data loss.
void CheckR3(const FileContext& ctx, std::vector<Finding>* findings);

/// R4 — mutex members without Clang thread-safety annotations. A class
/// declaring a mutex/condition-variable member must carry at least one
/// KONDO_* thread-safety annotation (typically KONDO_GUARDED_BY on the
/// fields the mutex protects), keeping `-Wthread-safety` meaningful.
void CheckR4(const FileContext& ctx, std::vector<Finding>* findings);

/// Runs every rule in `enabled` over `ctx`, applies the file's suppression
/// directives, and appends surviving findings. Malformed `kondo-lint:`
/// directives are reported as rule "LINT" (never suppressible) so a typo
/// cannot silently disable a rule. Returns the number of findings dropped
/// by suppression.
int CheckFile(const FileContext& ctx, const std::set<std::string>& enabled,
              std::vector<Finding>* findings);

/// Names declared in `lexed` with an unordered container type (used to seed
/// FileContext::unordered_names across the include graph).
std::set<std::string> CollectUnorderedDeclNames(const LexedFile& lexed);

}  // namespace lint
}  // namespace kondo

#endif  // KONDO_LINT_RULES_H_
