#ifndef KONDO_LINT_LINTER_H_
#define KONDO_LINT_LINTER_H_

#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "lint/rules.h"

namespace kondo {
namespace lint {

/// What to lint and which rules to run.
struct LintOptions {
  /// Repository root; module criticality and report paths are relative to
  /// it.
  std::string root = ".";

  /// Files or directories (relative to `root`) to scan. Directories are
  /// walked recursively for C++ sources.
  std::vector<std::string> paths = {"src"};

  /// Enabled rules; default all.
  std::set<std::string> rules = {"R1", "R2", "R3", "R4", "R5", "R6"};

  /// Path prefixes (relative to `root`, trailing slash implied) whose files
  /// — and transitive includes — are determinism-critical. These are the
  /// modules whose artefacts must be bit-identical under replay, plus the
  /// shared substrate they all stand on (sockets, env, fault injection) and
  /// the audit trail that replays them.
  std::vector<std::string> critical_modules = {
      "src/fuzz/", "src/exec/", "src/shard/",      "src/carve/",
      "src/provenance/", "src/serve/", "src/pack/", "src/fleet/",
      "src/audit/", "src/common/"};
};

/// Outcome of one lint run.
struct LintReport {
  std::vector<Finding> findings;  // Sorted by (file, line, rule).
  int files_scanned = 0;
  int suppressed = 0;  // Findings dropped by kondo-lint: allow directives.
};

/// Lints the configured tree. Returns an error Status only for
/// environmental failures (unreadable root, missing path) — findings are
/// data, not errors.
StatusOr<LintReport> RunLint(const LintOptions& options);

/// Renders `report` in the canonical `path:line: [RULE] message` format.
void PrintReport(const LintReport& report, std::ostream& out);

/// Renders `report` as a single JSON object — stable key order, findings
/// sorted like the text report — for CI artifacts and problem matchers:
///   {"tool": "kondo-lint", "files_scanned": N, "suppressed": N,
///    "findings": [{"file": ..., "line": N, "rule": ..., "message": ...}]}
void PrintJsonReport(const LintReport& report, std::ostream& out);

/// The kondo_lint CLI: parses `args` (everything after argv[0]), runs the
/// lint, prints the report to `out` and errors to `err`. Returns the
/// process exit code: 0 clean, 1 findings, 2 usage or IO error.
int LintMain(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);

}  // namespace lint
}  // namespace kondo

#endif  // KONDO_LINT_LINTER_H_
