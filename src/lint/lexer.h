#ifndef KONDO_LINT_LEXER_H_
#define KONDO_LINT_LEXER_H_

#include <string>
#include <string_view>

#include "lint/token.h"

namespace kondo {
namespace lint {

/// Tokenizes C++ source. The lexer is comment- and string-aware — the two
/// properties the rules depend on:
///
///  * comments are stripped from the token stream (after being mined for
///    `kondo-lint:` suppression directives), so commented-out code can
///    never trigger a finding;
///  * string/char literals (including raw strings) become single literal
///    tokens, so banned identifiers inside text can never trigger one
///    either.
///
/// It is deliberately NOT a preprocessor: macros are not expanded and
/// `#if`-excluded regions are still scanned. For an invariant linter that
/// is the safe direction — code that is conditionally compiled into a
/// determinism-critical module must satisfy the invariants in every
/// configuration.
LexedFile Lex(std::string_view source);

}  // namespace lint
}  // namespace kondo

#endif  // KONDO_LINT_LEXER_H_
