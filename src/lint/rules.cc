#include "lint/rules.h"

#include <algorithm>
#include <cstddef>
#include <string>

#include "lint/flow.h"

namespace kondo {
namespace lint {
namespace {

bool IsIdent(const Token& tok, const char* text) {
  return tok.kind == TokenKind::kIdentifier && tok.text == text;
}

bool IsPunct(const Token& tok, const char* text) {
  return tok.kind == TokenKind::kPunct && tok.text == text;
}

bool IsAnyIdent(const Token& tok) {
  return tok.kind == TokenKind::kIdentifier;
}

/// True when `name` names an unordered standard container.
bool IsUnorderedContainerName(const std::string& name) {
  return name == "unordered_map" || name == "unordered_set" ||
         name == "unordered_multimap" || name == "unordered_multiset";
}

/// Starting at the '<' token at `open`, returns the index one past the
/// matching '>' (template brackets; single-char punctuation makes ">>"
/// close two levels naturally). Returns `open` when unbalanced.
size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t open) {
  if (open >= toks.size() || !IsPunct(toks[open], "<")) {
    return open;
  }
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "<")) {
      ++depth;
    } else if (IsPunct(toks[i], ">")) {
      if (--depth == 0) {
        return i + 1;
      }
    } else if (IsPunct(toks[i], ";") || IsPunct(toks[i], "{")) {
      break;  // Statement ended: this '<' was a comparison, not a template.
    }
  }
  return open;
}

/// The banned-identifier table of R1. `sequence` entries must appear as
/// consecutive tokens; single-entry rows match one identifier anywhere.
struct BannedApi {
  std::vector<const char*> sequence;  // Identifier/punct texts in order.
  const char* why;
};

const BannedApi kBannedApis[] = {
    {{"rand"}, "seed-free C PRNG"},
    {{"srand"}, "reseeds the global C PRNG"},
    {{"rand_r"}, "caller-seeded C PRNG outside the campaign Rng stream"},
    {{"drand48"}, "global-state C PRNG"},
    {{"lrand48"}, "global-state C PRNG"},
    {{"mrand48"}, "global-state C PRNG"},
    {{"random_device"}, "hardware entropy source"},
    {{"system_clock"}, "wall-clock read"},
    {{"high_resolution_clock"}, "wall-clock read (aliases system_clock on "
                                "some platforms)"},
    {{"gettimeofday"}, "wall-clock read"},
    {{"getpid"}, "process identity as data (campaign event pids are the "
                 "deterministic 1+seq stream)"},
    {{"gettid"}, "thread identity as data"},
    {{"this_thread", "::", "get_id"}, "thread identity as data"},
    {{"time", "(", "nullptr", ")"}, "wall-clock read"},
    {{"time", "(", "NULL", ")"}, "wall-clock read"},
    {{"time", "(", "0", ")"}, "wall-clock read"},
    {{"clock", "(", ")"}, "process-time read"},
};

/// Writer methods whose Status return must never be dropped (R3).
bool IsWriterMethod(const std::string& name) {
  return name == "Append" || name == "AppendAll" || name == "Close" ||
         name == "Flush" || name == "SealBlock" || name == "Collect";
}

/// Receiver names that identify an IO writer for the bare-discard check.
bool IsWriterishReceiver(const std::string& name) {
  auto ends_with = [&name](const char* suffix) {
    const std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  return name == "writer" || name == "sink" || name == "store" ||
         name == "persister" || ends_with("writer") || ends_with("writer_") ||
         ends_with("sink") || ends_with("sink_") || ends_with("store_");
}

/// True when any token in [begin, end) is `.` or `->` followed by a writer
/// method and a call paren, or a writer method directly followed by a call
/// paren (implicit `this`). Sets `*method` to the matched name.
bool ContainsWriterCall(const std::vector<Token>& toks, size_t begin,
                        size_t end, std::string* method) {
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    if (IsAnyIdent(toks[i]) && IsWriterMethod(toks[i].text) &&
        i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
      const bool qualified =
          i > begin && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
      const bool leading = i == begin;
      if (qualified || leading) {
        *method = toks[i].text;
        return true;
      }
    }
  }
  return false;
}

/// Index of the terminating ';' of the statement starting at `start`
/// (tracking paren/brace/bracket depth), or toks.size().
size_t FindStatementEnd(const std::vector<Token>& toks, size_t start) {
  int depth = 0;
  for (size_t i = start; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kPunct) {
      continue;
    }
    if (t.text == "(" || t.text == "[" || t.text == "{") {
      ++depth;
    } else if (t.text == ")" || t.text == "]" || t.text == "}") {
      --depth;
      if (depth < 0) {
        return i;
      }
    } else if (t.text == ";" && depth == 0) {
      return i;
    }
  }
  return toks.size();
}

}  // namespace

void CheckR1(const FileContext& ctx, std::vector<Finding>* findings) {
  if (!ctx.critical) {
    return;
  }
  const auto& toks = ctx.lexed->tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    for (const BannedApi& banned : kBannedApis) {
      if (i + banned.sequence.size() > toks.size()) {
        continue;
      }
      bool match = true;
      for (size_t j = 0; j < banned.sequence.size(); ++j) {
        const Token& tok = toks[i + j];
        if (tok.kind == TokenKind::kString || tok.kind == TokenKind::kChar ||
            tok.text != banned.sequence[j]) {
          match = false;
          break;
        }
      }
      if (!match) {
        continue;
      }
      // A banned name used as a member of something else (`foo.rand`,
      // `mine::rand`) is someone else's symbol; qualified std:: uses still
      // match because `std` precedes the `::`.
      if (i >= 2 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
        continue;
      }
      if (i >= 2 && IsPunct(toks[i - 1], "::") && !IsIdent(toks[i - 2], "std") &&
          !IsIdent(toks[i - 2], "chrono")) {
        continue;
      }
      std::string spelled;
      for (const char* part : banned.sequence) {
        spelled += part;
      }
      findings->push_back(Finding{
          "R1", ctx.path, toks[i].line,
          "banned nondeterminism API '" + spelled + "' (" + banned.why +
              ") in a determinism-critical module; campaign randomness must "
              "come from the seeded Rng stream (TestCandidate::rng_seed) and "
              "timing must stay out of result-affecting state"});
      break;  // One finding per token position.
    }
  }
}

std::set<std::string> CollectUnorderedDeclNames(const LexedFile& lexed) {
  std::set<std::string> names;
  const auto& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsAnyIdent(toks[i]) || !IsUnorderedContainerName(toks[i].text)) {
      continue;
    }
    const size_t after = SkipTemplateArgs(toks, i + 1);
    if (after == i + 1) {
      continue;  // No template argument list.
    }
    // Skip ref/pointer/const decoration between the type and the name.
    size_t k = after;
    while (k < toks.size() &&
           (IsPunct(toks[k], "&") || IsPunct(toks[k], "*") ||
            IsIdent(toks[k], "const"))) {
      ++k;
    }
    if (k < toks.size() && IsAnyIdent(toks[k])) {
      names.insert(toks[k].text);
    }
  }
  return names;
}

void CheckR2(const FileContext& ctx, std::vector<Finding>* findings) {
  const auto& toks = ctx.lexed->tokens;

  // (a) Pointer-keyed unordered containers: flagged everywhere. Iteration
  // order over pointer keys depends on allocation addresses, which differ
  // run to run — no replay can be bit-identical once that order leaks out.
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsAnyIdent(toks[i]) || !IsUnorderedContainerName(toks[i].text)) {
      continue;
    }
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "<")) {
      continue;
    }
    const size_t end = SkipTemplateArgs(toks, i + 1);
    if (end == i + 1) {
      continue;
    }
    int depth = 0;
    for (size_t j = i + 1; j < end; ++j) {
      if (IsPunct(toks[j], "<")) {
        ++depth;
      } else if (IsPunct(toks[j], ">")) {
        --depth;
      } else if (depth == 1 && IsPunct(toks[j], ",")) {
        break;  // Only the key (first) template argument matters.
      } else if (depth == 1 && IsPunct(toks[j], "*")) {
        findings->push_back(Finding{
            "R2", ctx.path, toks[i].line,
            "pointer-keyed " + toks[i].text +
                ": iteration order follows allocation addresses and varies "
                "run to run; key by a stable id instead"});
        break;
      }
    }
  }

  // (b) Range-for over an unordered container in a critical file.
  if (!ctx.critical) {
    return;
  }
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "for") || !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    // Find the range-for ':' at paren depth 1 ("::" is a distinct token, so
    // a lone ':' is unambiguous).
    int depth = 0;
    size_t colon = 0;
    size_t close = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      if (IsPunct(toks[j], "(")) {
        ++depth;
      } else if (IsPunct(toks[j], ")")) {
        if (--depth == 0) {
          close = j;
          break;
        }
      } else if (depth == 1 && colon == 0 && IsPunct(toks[j], ":")) {
        colon = j;
      } else if (depth == 1 && IsPunct(toks[j], ";")) {
        break;  // Classic three-clause for.
      }
    }
    if (colon == 0 || close == 0) {
      continue;
    }
    for (size_t j = colon + 1; j < close; ++j) {
      const bool declared_unordered =
          IsAnyIdent(toks[j]) && ctx.unordered_names != nullptr &&
          ctx.unordered_names->count(toks[j].text) > 0;
      const bool literal_unordered =
          IsAnyIdent(toks[j]) &&
          toks[j].text.find("unordered_") != std::string::npos;
      if (declared_unordered || literal_unordered) {
        findings->push_back(Finding{
            "R2", ctx.path, toks[i].line,
            "iteration over unordered container '" + toks[j].text +
                "' in a determinism-critical file: the order is unspecified "
                "and leaks into results; iterate a sorted materialisation "
                "(e.g. IndexSet::ToSortedLinearIds) or justify with "
                "`// kondo-lint: allow(R2) <reason>`"});
        break;
      }
    }
  }
}

void CheckR3(const FileContext& ctx, std::vector<Finding>* findings) {
  const auto& toks = ctx.lexed->tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    // `(void) <writer call>` — only when the cast opens a statement (a
    // parameter list `(void)` is followed by `{`, `;`, or nothing).
    if (IsPunct(toks[i], "(") && i + 2 < toks.size() &&
        IsIdent(toks[i + 1], "void") && IsPunct(toks[i + 2], ")")) {
      const size_t expr = i + 3;
      const size_t end = FindStatementEnd(toks, expr);
      std::string method;
      if (ContainsWriterCall(toks, expr, end, &method)) {
        findings->push_back(Finding{
            "R3", ctx.path, toks[i].line,
            "IO writer status of '" + method +
                "' suppressed with (void): a swallowed short write turns a "
                "torn store into silent data loss; handle the Status or "
                "justify with `// kondo-lint: allow(R3) <reason>`"});
      }
      continue;
    }
    // `static_cast<void>(<writer call>)`.
    if (IsIdent(toks[i], "static_cast") && i + 4 < toks.size() &&
        IsPunct(toks[i + 1], "<") && IsIdent(toks[i + 2], "void") &&
        IsPunct(toks[i + 3], ">") && IsPunct(toks[i + 4], "(")) {
      const size_t end = FindStatementEnd(toks, i + 5);
      std::string method;
      if (ContainsWriterCall(toks, i + 5, end, &method)) {
        findings->push_back(Finding{
            "R3", ctx.path, toks[i].line,
            "IO writer status of '" + method +
                "' suppressed with static_cast<void>; handle the Status or "
                "justify with `// kondo-lint: allow(R3) <reason>`"});
      }
      continue;
    }
    // `std::ignore = <writer call>`.
    if (IsIdent(toks[i], "ignore") && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "=")) {
      const size_t end = FindStatementEnd(toks, i + 2);
      std::string method;
      if (ContainsWriterCall(toks, i + 2, end, &method)) {
        findings->push_back(Finding{
            "R3", ctx.path, toks[i].line,
            "IO writer status of '" + method +
                "' discarded into std::ignore; handle the Status or justify "
                "with `// kondo-lint: allow(R3) <reason>`"});
      }
      continue;
    }
    // Bare `writer.Method(...);` statement on a writer-named receiver.
    const bool at_statement_start =
        i == 0 || IsPunct(toks[i - 1], ";") || IsPunct(toks[i - 1], "{") ||
        IsPunct(toks[i - 1], "}") || IsPunct(toks[i - 1], ")") ||
        IsIdent(toks[i - 1], "else");
    // `(void)writer.Close()` already reported by the cast arm above; the
    // trailing ')' must not re-trigger the bare-discard arm.
    const bool after_void_cast = i >= 3 && IsPunct(toks[i - 1], ")") &&
                                 IsIdent(toks[i - 2], "void") &&
                                 IsPunct(toks[i - 3], "(");
    if (at_statement_start && !after_void_cast && IsAnyIdent(toks[i]) &&
        IsWriterishReceiver(toks[i].text) && i + 2 < toks.size() &&
        (IsPunct(toks[i + 1], ".") || IsPunct(toks[i + 1], "->")) &&
        IsAnyIdent(toks[i + 2]) && IsWriterMethod(toks[i + 2].text) &&
        i + 3 < toks.size() && IsPunct(toks[i + 3], "(")) {
      // The call's value is discarded only when the statement ends right
      // after the closing paren.
      int depth = 0;
      size_t j = i + 3;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "(")) {
          ++depth;
        } else if (IsPunct(toks[j], ")")) {
          if (--depth == 0) {
            break;
          }
        }
      }
      if (j + 1 < toks.size() && IsPunct(toks[j + 1], ";")) {
        findings->push_back(Finding{
            "R3", ctx.path, toks[i].line,
            "discarded Status of IO writer call '" + toks[i].text +
                (toks[i + 1].text == "->" ? "->" : ".") + toks[i + 2].text +
                "(...)': check it (KONDO_RETURN_IF_ERROR) or justify with "
                "`// kondo-lint: allow(R3) <reason>`"});
      }
    }
  }
}

void CheckR4(const FileContext& ctx, std::vector<Finding>* findings) {
  const auto& toks = ctx.lexed->tokens;

  struct ClassFrame {
    std::string name;
    int body_depth = 0;  // Brace depth of direct members.
    std::vector<std::pair<int, std::string>> mutex_members;  // line, name.
    bool has_annotation = false;
  };

  std::vector<ClassFrame> frames;
  bool pending_class = false;
  std::string pending_name;
  int depth = 0;

  auto is_mutex_type_at = [&toks](size_t i, size_t* decl_name_idx,
                                  std::string* type_name) {
    // `std::mutex` / `std::shared_mutex` / `std::recursive_mutex` /
    // `std::condition_variable[_any]` member: std :: <type> <name> ;
    if (IsIdent(toks[i], "std") && i + 3 < toks.size() &&
        IsPunct(toks[i + 1], "::") && IsAnyIdent(toks[i + 2])) {
      const std::string& t = toks[i + 2].text;
      if (t == "mutex" || t == "shared_mutex" || t == "recursive_mutex" ||
          t == "timed_mutex" || t == "condition_variable" ||
          t == "condition_variable_any") {
        if (IsAnyIdent(toks[i + 3]) && i + 4 < toks.size() &&
            IsPunct(toks[i + 4], ";")) {
          *decl_name_idx = i + 3;
          *type_name = "std::" + t;
          return true;
        }
      }
      return false;
    }
    // Kondo's annotated wrappers: Mutex <name> ; / CondVar <name> ;
    if ((IsIdent(toks[i], "Mutex") || IsIdent(toks[i], "CondVar")) &&
        i + 2 < toks.size() && IsAnyIdent(toks[i + 1]) &&
        IsPunct(toks[i + 2], ";")) {
      if (i > 0 && (IsPunct(toks[i - 1], "::") || IsPunct(toks[i - 1], ".") ||
                    IsPunct(toks[i - 1], "->"))) {
        return false;  // Qualified use of someone else's Mutex.
      }
      *decl_name_idx = i + 1;
      *type_name = toks[i].text;
      return true;
    }
    return false;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];

    if ((IsIdent(tok, "class") || IsIdent(tok, "struct")) &&
        !(i > 0 && IsIdent(toks[i - 1], "enum")) &&
        !(i > 0 && (IsPunct(toks[i - 1], "<") || IsPunct(toks[i - 1], ",")))) {
      // Scan ahead for the class-head name: the last identifier before the
      // body '{', the base-clause ':', or a terminating ';' (forward decl).
      pending_class = false;
      pending_name.clear();
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "{") || IsPunct(toks[j], ":")) {
          pending_class = !pending_name.empty();
          break;
        }
        if (IsPunct(toks[j], ";") || IsPunct(toks[j], ">")) {
          break;  // Forward declaration or template parameter.
        }
        if (IsPunct(toks[j], "(")) {
          // Annotation macro in the head, e.g. KONDO_CAPABILITY("mutex"):
          // skip its argument list.
          int inner = 0;
          for (; j < toks.size(); ++j) {
            if (IsPunct(toks[j], "(")) {
              ++inner;
            } else if (IsPunct(toks[j], ")") && --inner == 0) {
              break;
            }
          }
          continue;
        }
        if (IsAnyIdent(toks[j]) && toks[j].text != "final" &&
            toks[j].text != "public" && toks[j].text != "private" &&
            toks[j].text != "protected" && toks[j].text != "virtual") {
          pending_name = toks[j].text;
        }
      }
    }

    if (tok.kind == TokenKind::kPunct && tok.text == "{") {
      ++depth;
      if (pending_class) {
        frames.push_back(ClassFrame{pending_name, depth, {}, false});
        pending_class = false;
        pending_name.clear();
      }
      continue;
    }
    if (tok.kind == TokenKind::kPunct && tok.text == "}") {
      if (!frames.empty() && frames.back().body_depth == depth) {
        const ClassFrame& frame = frames.back();
        if (!frame.has_annotation) {
          for (const auto& [line, name] : frame.mutex_members) {
            findings->push_back(Finding{
                "R4", ctx.path, line,
                "class '" + frame.name + "' declares mutex member '" + name +
                    "' but carries no thread-safety annotations; mark the "
                    "fields it protects with KONDO_GUARDED_BY(" + name +
                    ") (src/common/thread_annotations.h) so -Wthread-safety "
                    "can verify the locking discipline"});
          }
        }
        frames.pop_back();
      }
      --depth;
      continue;
    }

    if (frames.empty()) {
      continue;
    }

    // Any KONDO_* thread-safety annotation anywhere inside the class body
    // (member or method, any nesting) satisfies R4 for that class.
    if (IsAnyIdent(tok) &&
        (tok.text.rfind("KONDO_GUARDED_BY", 0) == 0 ||
         tok.text.rfind("KONDO_PT_GUARDED_BY", 0) == 0 ||
         tok.text.rfind("KONDO_REQUIRES", 0) == 0 ||
         tok.text.rfind("KONDO_ACQUIRE", 0) == 0 ||
         tok.text.rfind("KONDO_RELEASE", 0) == 0 ||
         tok.text.rfind("KONDO_EXCLUDES", 0) == 0 ||
         tok.text.rfind("KONDO_CAPABILITY", 0) == 0 ||
         tok.text.rfind("KONDO_NO_THREAD_SAFETY_ANALYSIS", 0) == 0 ||
         tok.text.rfind("GUARDED_BY", 0) == 0)) {
      for (ClassFrame& frame : frames) {
        frame.has_annotation = true;
      }
      continue;
    }

    // Mutex member declarations attach to the innermost class whose direct
    // member depth we are at.
    if (frames.back().body_depth == depth) {
      size_t name_idx = 0;
      std::string type_name;
      if (is_mutex_type_at(i, &name_idx, &type_name)) {
        frames.back().mutex_members.emplace_back(toks[name_idx].line,
                                                 toks[name_idx].text);
      }
    }
  }
}

void CheckR6(const FileContext& ctx, std::vector<Finding>* findings) {
  if (!ctx.critical) {
    return;
  }
  for (const FlowFunction& fn : SegmentFunctions(*ctx.lexed)) {
    for (const TaintedUse& use : TraceWireTaint(*ctx.lexed, fn)) {
      std::string sink;
      if (use.sink == "resize" || use.sink == "reserve") {
        sink = "'" + use.sink_expr + "." + use.sink + "()'";
      } else if (use.sink == "new[]") {
        sink = "a 'new " + use.sink_expr + "[]' allocation";
      } else {
        sink = "index arithmetic on '" + use.sink_expr + "'";
      }
      findings->push_back(Finding{
          "R6", ctx.path, use.line,
          "'" + use.variable + "' carries a wire-tainted length (" +
              use.source + " at line " + std::to_string(use.source_line) +
              ") into " + sink +
              " before any bounds check; compare it against the cursor's "
              "remaining bytes first"});
    }
  }
}

namespace {

/// True when the file's allow directives exempt `rule` on `line`.
bool SuppressedAt(const LexedFile& lexed, int line, const char* rule) {
  const auto it = lexed.suppressions.find(line);
  return it != lexed.suppressions.end() &&
         (it->second.count(rule) > 0 || it->second.count("*") > 0);
}

}  // namespace

void LockOrderCollector::AddFile(const FileContext& ctx) {
  if (!ctx.critical) {
    return;
  }
  for (const FlowFunction& fn : SegmentFunctions(*ctx.lexed)) {
    const LockTrace trace = TraceLocks(*ctx.lexed, fn);
    for (const LockAcquisition& acq : trace.acquisitions) {
      for (const std::string& from : acq.held) {
        if (from == acq.lock) {
          continue;  // Re-entrant self-acquisition is R5's job elsewhere.
        }
        Edge edge{from,    acq.lock, ctx.path,
                  acq.line, fn.name,
                  SuppressedAt(*ctx.lexed, acq.line, "R5")};
        edges_.emplace(std::make_pair(from, acq.lock), std::move(edge));
      }
    }
    for (const WaitSite& site : trace.waits) {
      std::vector<std::string> others;
      bool seen_own = false;
      for (const std::string& id : site.held) {
        if (!seen_own && id == site.wait_lock) {
          seen_own = true;
          continue;
        }
        others.push_back(id);
      }
      if (others.empty()) {
        continue;
      }
      if (SuppressedAt(*ctx.lexed, site.line, "R5")) {
        ++suppressed_;
        continue;
      }
      std::string held_list;
      for (size_t i = 0; i < others.size(); ++i) {
        held_list += (i > 0 ? ", '" : "'") + others[i] + "'";
      }
      wait_findings_.push_back(Finding{
          "R5", ctx.path, site.line,
          "CondVar::Wait(" + site.wait_lock_expr + ") in " + fn.name +
              " blocks while still holding " + held_list +
              ": Wait releases only '" + site.wait_lock_expr +
              "', so a notifier that needs the held lock deadlocks"});
    }
  }
}

int LockOrderCollector::Finish(std::vector<Finding>* findings) {
  for (Finding& finding : wait_findings_) {
    findings->push_back(std::move(finding));
  }
  wait_findings_.clear();

  // Adjacency over qualified lock ids; std::map/set keep every walk
  // deterministic.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [key, edge] : edges_) {
    (void)edge;
    adj[key.first].insert(key.second);
    adj[key.second];  // Ensure the sink is a node too.
  }

  // Reachability per node (the graphs here are a handful of locks; O(V*E)
  // is nothing and trivially deterministic).
  std::map<std::string, std::set<std::string>> reach;
  for (const auto& [node, out] : adj) {
    (void)out;
    std::set<std::string>& r = reach[node];
    std::vector<std::string> stack{node};
    while (!stack.empty()) {
      const std::string at = stack.back();
      stack.pop_back();
      for (const std::string& next : adj[at]) {
        if (r.insert(next).second) {
          stack.push_back(next);
        }
      }
    }
  }

  // Strongly connected components containing a cycle, visited in order of
  // their smallest member.
  std::set<std::string> assigned;
  for (const auto& [node, out] : adj) {
    (void)out;
    if (assigned.count(node) > 0) {
      continue;
    }
    std::set<std::string> scc;
    for (const auto& [other, r] : reach) {
      (void)r;
      if (reach[node].count(other) > 0 && reach[other].count(node) > 0) {
        scc.insert(other);
      }
    }
    const bool self_loop = reach[node].count(node) > 0;
    if (scc.size() < 2 && !self_loop) {
      continue;
    }
    scc.insert(node);
    assigned.insert(scc.begin(), scc.end());

    // Reconstruct one witness cycle: from the smallest member, repeatedly
    // step to the smallest in-SCC successor until a node repeats.
    std::vector<std::string> path{*scc.begin()};
    std::map<std::string, size_t> position{{path[0], 0}};
    size_t loop_start = 0;
    while (true) {
      const std::string& at = path.back();
      std::string next;
      for (const std::string& cand : adj[at]) {
        if (scc.count(cand) > 0) {
          next = cand;
          break;
        }
      }
      if (next.empty()) {
        break;  // Unreachable in a genuine SCC; bail defensively.
      }
      const auto seen = position.find(next);
      if (seen != position.end()) {
        loop_start = seen->second;
        break;
      }
      position[next] = path.size();
      path.push_back(next);
    }
    std::vector<std::string> cycle(path.begin() + static_cast<ptrdiff_t>(loop_start),
                                   path.end());
    if (cycle.empty()) {
      continue;
    }
    // Rotate so the cycle starts at its smallest lock — stable anchoring
    // no matter which node the walk entered through.
    const size_t smallest = static_cast<size_t>(
        std::min_element(cycle.begin(), cycle.end()) - cycle.begin());
    std::rotate(cycle.begin(),
                cycle.begin() + static_cast<ptrdiff_t>(smallest),
                cycle.end());

    bool cycle_suppressed = false;
    std::string witness;
    const Edge* anchor = nullptr;
    for (size_t i = 0; i < cycle.size(); ++i) {
      const std::string& from = cycle[i];
      const std::string& to = cycle[(i + 1) % cycle.size()];
      const auto it = edges_.find({from, to});
      if (it == edges_.end()) {
        continue;
      }
      const Edge& edge = it->second;
      cycle_suppressed = cycle_suppressed || edge.suppressed;
      if (anchor == nullptr) {
        anchor = &edge;
      }
      if (!witness.empty()) {
        witness += "; ";
      }
      witness += "'" + edge.from + "' -> '" + edge.to + "' in " +
                 edge.function + " (" + edge.file + ":" +
                 std::to_string(edge.line) + ")";
    }
    if (anchor == nullptr) {
      continue;
    }
    if (cycle_suppressed) {
      ++suppressed_;
      continue;
    }
    findings->push_back(Finding{
        "R5", anchor->file, anchor->line,
        "lock-order cycle: " + witness +
            "; threads interleaving these acquisition orders can deadlock"});
  }

  const int suppressed = suppressed_;
  suppressed_ = 0;
  return suppressed;
}

int CheckFile(const FileContext& ctx, const std::set<std::string>& enabled,
              std::vector<Finding>* findings) {
  std::vector<Finding> raw;
  if (enabled.count("R1") > 0) {
    CheckR1(ctx, &raw);
  }
  if (enabled.count("R2") > 0) {
    CheckR2(ctx, &raw);
  }
  if (enabled.count("R3") > 0) {
    CheckR3(ctx, &raw);
  }
  if (enabled.count("R4") > 0) {
    CheckR4(ctx, &raw);
  }
  if (enabled.count("R6") > 0) {
    CheckR6(ctx, &raw);
  }

  int suppressed = 0;
  for (Finding& finding : raw) {
    const auto it = ctx.lexed->suppressions.find(finding.line);
    if (it != ctx.lexed->suppressions.end() &&
        (it->second.count(finding.rule) > 0 || it->second.count("*") > 0)) {
      ++suppressed;
      continue;
    }
    findings->push_back(std::move(finding));
  }
  for (const auto& [line, message] : ctx.lexed->malformed_directives) {
    findings->push_back(Finding{"LINT", ctx.path, line, message});
  }
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return suppressed;
}

}  // namespace lint
}  // namespace kondo
