#include "lint/include_graph.h"

#include <algorithm>
#include <deque>

namespace kondo {
namespace lint {
namespace {

/// Lexically normalizes `path`: collapses "a/./b" and "a/../b". Good enough
/// for the repo-relative joins the resolver produces.
std::string NormalizePath(const std::string& path) {
  std::vector<std::string> parts;
  std::string piece;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (piece == "..") {
        if (!parts.empty()) {
          parts.pop_back();
        }
      } else if (!piece.empty() && piece != ".") {
        parts.push_back(piece);
      }
      piece.clear();
    } else {
      piece += path[i];
    }
  }
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += '/';
    }
    out += parts[i];
  }
  return out;
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::vector<std::string> ExtractIncludeTargets(const LexedFile& lexed) {
  std::vector<std::string> targets;
  const auto& toks = lexed.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct || toks[i].text != "#") {
      continue;
    }
    // '#' must open its logical line — i.e. not follow a token on the same
    // line — to be a preprocessor directive.
    if (i > 0 && toks[i - 1].line == toks[i].line) {
      continue;
    }
    if (toks[i + 1].kind != TokenKind::kIdentifier ||
        toks[i + 1].text != "include") {
      continue;
    }
    if (i + 2 >= toks.size()) {
      continue;
    }
    const Token& target = toks[i + 2];
    if (target.kind == TokenKind::kString) {
      targets.push_back(target.text);
    } else if (target.kind == TokenKind::kPunct && target.text == "<") {
      std::string joined;
      for (size_t j = i + 3;
           j < toks.size() && toks[j].line == toks[i].line &&
           !(toks[j].kind == TokenKind::kPunct && toks[j].text == ">");
           ++j) {
        joined += toks[j].text;
      }
      targets.push_back(joined);
    }
  }
  return targets;
}

IncludeGraph IncludeGraph::Build(
    const std::map<std::string, LexedFile>& files) {
  IncludeGraph graph;
  for (const auto& [path, lexed] : files) {
    std::vector<std::string> resolved;
    for (const std::string& inc : ExtractIncludeTargets(lexed)) {
      // Resolution order mirrors the build: -I src, repo root, then the
      // including file's own directory.
      const std::string candidates[] = {
          NormalizePath("src/" + inc),
          NormalizePath(inc),
          NormalizePath(DirName(path) + "/" + inc),
      };
      for (const std::string& candidate : candidates) {
        if (files.count(candidate) > 0) {
          if (std::find(resolved.begin(), resolved.end(), candidate) ==
              resolved.end()) {
            resolved.push_back(candidate);
          }
          break;
        }
      }
    }
    graph.edges_[path] = std::move(resolved);
  }
  return graph;
}

const std::vector<std::string>& IncludeGraph::DirectIncludes(
    const std::string& path) const {
  const auto it = edges_.find(path);
  return it == edges_.end() ? empty_ : it->second;
}

std::set<std::string> IncludeGraph::CriticalClosure(
    const std::vector<std::string>& module_prefixes) const {
  std::set<std::string> critical;
  std::deque<std::string> frontier;
  for (const auto& [path, includes] : edges_) {
    (void)includes;
    for (const std::string& prefix : module_prefixes) {
      if (StartsWith(path, prefix)) {
        critical.insert(path);
        frontier.push_back(path);
        break;
      }
    }
  }
  while (!frontier.empty()) {
    const std::string at = frontier.front();
    frontier.pop_front();
    for (const std::string& next : DirectIncludes(at)) {
      if (critical.insert(next).second) {
        frontier.push_back(next);
      }
    }
  }
  return critical;
}

}  // namespace lint
}  // namespace kondo
