#ifndef KONDO_LINT_FLOW_H_
#define KONDO_LINT_FLOW_H_

#include <cstddef>
#include <string>
#include <vector>

#include "lint/token.h"

namespace kondo {
namespace lint {

/// One function definition carved out of a lexed translation unit. The
/// segmenter is a lightweight recogniser over the token stream, not a
/// parser: it finds `name(params) qualifiers... {` shapes (including
/// qualified names, destructors, and constructor member-initialiser lists)
/// and records the brace-balanced body extent. Lambda bodies are not split
/// out — they remain part of the enclosing function, which is the right
/// attribution for lock and taint analysis (the lambda runs with the
/// enclosing frame's locals in scope).
struct FlowFunction {
  /// The function's name as spelled, e.g. "Stop" or "FleetWorker::Stop".
  std::string name;
  /// Identity scope for symbols the body touches: the qualifier chain or
  /// enclosing class for member functions, the function's own name for free
  /// functions. Two functions with equal scope share member identity (e.g.
  /// `mu_` means the same mutex), distinct scopes never collide.
  std::string scope;
  int line = 0;         // Line of the name token, 1-based.
  size_t body_begin = 0;  // Token index just after the opening '{'.
  size_t body_end = 0;    // Token index of the matching '}'.
};

/// Segments `lexed` into function bodies. Deterministic: functions are
/// returned in token order. Declarations, deleted/defaulted definitions,
/// and control-flow keywords never produce entries.
std::vector<FlowFunction> SegmentFunctions(const LexedFile& lexed);

/// A mutex acquisition observed while walking one function body.
struct LockAcquisition {
  std::string lock;  // Scope-qualified lock identity, e.g. "KondoServer::jobs_mu_".
  std::string lock_expr;  // The lock expression as spelled, e.g. "jobs_mu_".
  int line = 0;
  /// Locks already held at the acquisition point, in acquisition order
  /// (scope-qualified). Non-empty `held` means a nested acquisition: an
  /// ordering edge held.back() -> lock.
  std::vector<std::string> held;
};

/// A condition-variable Wait call site.
struct WaitSite {
  std::string wait_lock;       // Scope-qualified mutex passed to Wait().
  std::string wait_lock_expr;  // As spelled.
  int line = 0;
  /// Every lock held at the call, scope-qualified, in acquisition order.
  /// Wait atomically releases only `wait_lock`; any other held lock stays
  /// held across the block.
  std::vector<std::string> held;
};

/// The lock behaviour of one function: every acquisition (RAII
/// `MutexLock`/`lock_guard`-style guards, released at the end of their
/// brace scope, and explicit `.Lock()`/`.Unlock()` pairs) plus every
/// `CondVar::Wait` site. Intraprocedural: callee acquisitions and
/// KONDO_REQUIRES preconditions are invisible.
struct LockTrace {
  std::vector<LockAcquisition> acquisitions;
  std::vector<WaitSite> waits;
};

/// Walks `fn`'s body tracking lock scopes.
LockTrace TraceLocks(const LexedFile& lexed, const FlowFunction& fn);

/// A wire-tainted value reaching an allocation or indexing sink before any
/// bounds comparison.
struct TaintedUse {
  std::string variable;  // The tainted name as spelled, e.g. "count".
  std::string sink;      // "resize", "reserve", "new[]", or "index".
  std::string sink_expr;  // Receiver or sink expression, e.g. "resp.values".
  int line = 0;          // Sink line.
  std::string source;    // The cursor read that tainted it, e.g. "ReadU32".
  int source_line = 0;
};

/// Walks `fn`'s body tracking taint from cursor length reads
/// (ReadU16/ReadU32/ReadU64/ReadVarint) to allocation sinks. A name is
/// tainted by `cursor.ReadU32(&name)`, propagates through assignment, and
/// is cleared the first time it appears in a comparison (`<`, `>`, `<=`,
/// `>=`, `==`, `!=`) — the bounds check the rule wants to see. No aliasing,
/// no interprocedural flow: a length validated inside a callee must be
/// re-checked (or suppressed) at the caller.
std::vector<TaintedUse> TraceWireTaint(const LexedFile& lexed,
                                       const FlowFunction& fn);

}  // namespace lint
}  // namespace kondo

#endif  // KONDO_LINT_FLOW_H_
