#include "lint/flow.h"

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace kondo {
namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Statement keywords that can precede a '(' without being a function name.
bool IsControlKeyword(const std::string& text) {
  static const std::set<std::string>* const kSet = new std::set<std::string>{
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "alignof",  "decltype", "new",
      "delete",   "else",     "do",       "static_assert",
      "noexcept", "alignas",  "throw",    "case",     "default",
      "co_await", "co_return", "co_yield", "defined",  "assert",
      "typedef",  "using",    "goto"};
  return kSet->count(text) != 0;
}

/// Index of the ')' matching the '(' at `open`, or kNpos. Tracks only
/// parentheses — string/char parens are non-punct tokens, so they never
/// unbalance the count.
size_t MatchParen(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t k = open; k < toks.size(); ++k) {
    if (IsPunct(toks[k], "(")) {
      ++depth;
    } else if (IsPunct(toks[k], ")")) {
      if (--depth == 0) {
        return k;
      }
    }
  }
  return kNpos;
}

/// Index of the '}' matching the '{' at `open`, or kNpos.
size_t MatchBrace(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t k = open; k < toks.size(); ++k) {
    if (IsPunct(toks[k], "{")) {
      ++depth;
    } else if (IsPunct(toks[k], "}")) {
      if (--depth == 0) {
        return k;
      }
    }
  }
  return kNpos;
}

/// Index just past a balanced '<...>' opening at `open`, or kNpos when the
/// angle run is unbalanced within `limit` tokens (a less-than expression,
/// not template arguments).
size_t SkipAngles(const std::vector<Token>& toks, size_t open, size_t limit) {
  int depth = 0;
  for (size_t k = open; k < toks.size() && k < open + limit; ++k) {
    if (IsPunct(toks[k], "<")) {
      ++depth;
    } else if (IsPunct(toks[k], ">")) {
      if (--depth == 0) {
        return k + 1;
      }
    } else if (IsPunct(toks[k], ";") || IsPunct(toks[k], "{")) {
      return kNpos;
    }
  }
  return kNpos;
}

/// A member/qualifier chain starting at an identifier: `a.b->c` or
/// `std::min`. `comps` holds the identifiers, `flat` the chain as spelled,
/// `end` the index just past the chain.
struct Chain {
  std::vector<std::string> comps;
  std::string flat;
  size_t end = 0;
  int line = 0;
};

Chain ReadChain(const std::vector<Token>& toks, size_t i) {
  Chain chain;
  chain.line = toks[i].line;
  chain.comps.push_back(toks[i].text);
  chain.flat = toks[i].text;
  size_t k = i + 1;
  while (k + 1 < toks.size() &&
         (IsPunct(toks[k], ".") || IsPunct(toks[k], "->") ||
          IsPunct(toks[k], "::")) &&
         IsIdent(toks[k + 1])) {
    chain.flat += toks[k].text + toks[k + 1].text;
    chain.comps.push_back(toks[k + 1].text);
    k += 2;
  }
  chain.end = k;
  return chain;
}

/// The chain minus its final component — the receiver of `a.b.resize`.
std::string ChainReceiver(const std::vector<Token>& toks, size_t i,
                          const Chain& chain) {
  if (chain.comps.size() < 2) {
    return chain.flat;
  }
  std::string flat = toks[i].text;
  size_t k = i + 1;
  for (size_t c = 1; c + 1 < chain.comps.size(); ++c, k += 2) {
    flat += toks[k].text + toks[k + 1].text;
  }
  return flat;
}

/// Flattens tokens [begin, end) into expression text, dropping leading
/// address-of / dereference operators so `&mu`, `*mu`, and `mu` name the
/// same lock.
std::string FlattenExpr(const std::vector<Token>& toks, size_t begin,
                        size_t end) {
  size_t b = begin;
  while (b < end && (IsPunct(toks[b], "&") || IsPunct(toks[b], "*"))) {
    ++b;
  }
  std::string out;
  for (size_t k = b; k < end; ++k) {
    out += toks[k].text;
  }
  return out;
}

bool IsGuardType(const std::string& text) {
  return text == "MutexLock" || text == "lock_guard" ||
         text == "unique_lock" || text == "scoped_lock" ||
         text == "shared_lock";
}

bool IsCursorReadName(const std::string& text) {
  return text == "ReadU16" || text == "ReadU32" || text == "ReadU64" ||
         text == "ReadVarint";
}

std::string Qualify(const std::string& scope, const std::string& expr) {
  return scope.empty() ? expr : scope + "::" + expr;
}

}  // namespace

std::vector<FlowFunction> SegmentFunctions(const LexedFile& lexed) {
  const std::vector<Token>& toks = lexed.tokens;
  std::vector<FlowFunction> out;

  // Enclosing class/struct definitions, by brace depth, so unqualified
  // inline method definitions inherit their class as identity scope.
  struct ClassFrame {
    std::string name;
    int depth = 0;  // Brace depth *inside* the class body.
  };
  std::vector<ClassFrame> classes;
  int depth = 0;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "}")) {
      --depth;
      while (!classes.empty() && classes.back().depth > depth) {
        classes.pop_back();
      }
      continue;
    }
    if (!IsIdent(t)) {
      continue;
    }

    // Class/struct definition header: remember the name so its inline
    // methods get the right scope. `enum class` and forward declarations
    // never open a frame.
    if ((t.text == "class" || t.text == "struct") &&
        !(i > 0 && IsIdent(toks[i - 1], "enum"))) {
      size_t j = i + 1;
      std::string name;
      std::string penultimate;
      while (j < toks.size()) {
        const Token& u = toks[j];
        if (IsIdent(u)) {
          if (j + 1 < toks.size() && IsPunct(toks[j + 1], "(")) {
            // Attribute macro such as KONDO_CAPABILITY("mutex").
            const size_t close = MatchParen(toks, j + 1);
            if (close == kNpos) {
              break;
            }
            j = close + 1;
            continue;
          }
          penultimate = name;
          name = u.text;
          ++j;
          continue;
        }
        if (IsPunct(u, ":")) {  // Base clause: scan ahead for the brace.
          while (j < toks.size() && !IsPunct(toks[j], "{") &&
                 !IsPunct(toks[j], ";")) {
            ++j;
          }
          continue;
        }
        break;
      }
      if (j < toks.size() && IsPunct(toks[j], "{") && !name.empty()) {
        if (name == "final" && !penultimate.empty()) {
          name = penultimate;
        }
        classes.push_back(ClassFrame{name, depth + 1});
      }
      continue;
    }

    // Function-definition candidate: identifier immediately followed by a
    // parameter list.
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(") ||
        IsControlKeyword(t.text)) {
      continue;
    }
    const size_t params_close = MatchParen(toks, i + 1);
    if (params_close == kNpos) {
      continue;
    }

    // Trailing qualifiers: const/noexcept/override/final and KONDO_*
    // annotation macros (with optional argument lists), then an optional
    // trailing return type, then either the body brace or a constructor
    // member-initialiser list.
    size_t j = params_close + 1;
    bool bad = false;
    while (j < toks.size() && !bad) {
      const Token& u = toks[j];
      if (IsIdent(u) &&
          (u.text == "const" || u.text == "noexcept" ||
           u.text == "override" || u.text == "final" ||
           u.text == "mutable" ||
           u.text.compare(0, 6, "KONDO_") == 0)) {
        ++j;
        if (j < toks.size() && IsPunct(toks[j], "(")) {
          const size_t close = MatchParen(toks, j);
          if (close == kNpos) {
            bad = true;
            break;
          }
          j = close + 1;
        }
        continue;
      }
      if (IsPunct(u, "->")) {  // Trailing return type.
        ++j;
        while (j < toks.size() && !IsPunct(toks[j], "{") &&
               !IsPunct(toks[j], ";") && !IsPunct(toks[j], "=") &&
               !IsPunct(toks[j], ",") && !IsPunct(toks[j], ")")) {
          ++j;
        }
        break;
      }
      break;
    }
    if (bad || j >= toks.size()) {
      continue;
    }

    // Constructor member-initialiser list.
    if (IsPunct(toks[j], ":")) {
      ++j;
      bool init_ok = false;
      while (j < toks.size()) {
        if (!IsIdent(toks[j])) {
          break;
        }
        // Member or (possibly qualified, possibly templated) base name.
        while (j + 1 < toks.size() && IsPunct(toks[j + 1], "::") &&
               j + 2 < toks.size() && IsIdent(toks[j + 2])) {
          j += 2;
        }
        ++j;
        if (j < toks.size() && IsPunct(toks[j], "<")) {
          const size_t past = SkipAngles(toks, j, 64);
          if (past == kNpos) {
            break;
          }
          j = past;
        }
        if (j < toks.size() && IsPunct(toks[j], "(")) {
          const size_t close = MatchParen(toks, j);
          if (close == kNpos) {
            break;
          }
          j = close + 1;
        } else if (j < toks.size() && IsPunct(toks[j], "{")) {
          const size_t close = MatchBrace(toks, j);
          if (close == kNpos) {
            break;
          }
          j = close + 1;
        } else {
          break;
        }
        if (j < toks.size() && IsPunct(toks[j], ",")) {
          ++j;
          continue;
        }
        init_ok = j < toks.size() && IsPunct(toks[j], "{");
        break;
      }
      if (!init_ok) {
        continue;
      }
    }

    if (j >= toks.size() || !IsPunct(toks[j], "{")) {
      continue;
    }
    const size_t body_close = MatchBrace(toks, j);
    if (body_close == kNpos) {
      continue;
    }

    // Walk the name back through `Qualifier::` chains (and a destructor
    // tilde) to recover the spelled name and its identity scope.
    std::vector<std::string> parts{t.text};
    size_t k = i;
    if (k >= 1 && IsPunct(toks[k - 1], "~")) {
      parts[0] = "~" + parts[0];
      --k;
    }
    while (k >= 2 && IsPunct(toks[k - 1], "::") && IsIdent(toks[k - 2])) {
      parts.insert(parts.begin(), toks[k - 2].text);
      k -= 2;
    }

    FlowFunction fn;
    fn.name = parts[0];
    for (size_t p = 1; p < parts.size(); ++p) {
      fn.name += "::" + parts[p];
    }
    if (parts.size() >= 2) {
      fn.scope = parts[0];
      for (size_t p = 1; p + 1 < parts.size(); ++p) {
        fn.scope += "::" + parts[p];
      }
    } else if (!classes.empty()) {
      fn.scope = classes.back().name;
    } else {
      fn.scope = fn.name;  // Free function: locals never leak the scope.
    }
    fn.line = t.line;
    fn.body_begin = j + 1;
    fn.body_end = body_close;
    out.push_back(fn);

    // Resume just inside the body: depth/class tracking stays consistent
    // and inline definitions of locally declared classes are still seen.
    i = j;
    ++depth;
  }
  return out;
}

LockTrace TraceLocks(const LexedFile& lexed, const FlowFunction& fn) {
  const std::vector<Token>& toks = lexed.tokens;
  LockTrace trace;

  struct Held {
    std::string id;
    int scope_depth = 0;
    bool raii = false;
  };
  std::vector<Held> held;
  int depth = 1;  // The body's own brace is open.

  auto held_ids = [&held]() {
    std::vector<std::string> ids;
    ids.reserve(held.size());
    for (const Held& h : held) {
      ids.push_back(h.id);
    }
    return ids;
  };

  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "}")) {
      for (size_t h = held.size(); h-- > 0;) {
        if (held[h].raii && held[h].scope_depth == depth) {
          held.erase(held.begin() + static_cast<ptrdiff_t>(h));
        }
      }
      --depth;
      continue;
    }
    if (!IsIdent(t)) {
      continue;
    }

    // RAII guard declaration: `MutexLock lock(expr);` (std guard types with
    // template arguments are accepted for completeness).
    if (IsGuardType(t.text)) {
      size_t j = i + 1;
      if (j < toks.size() && IsPunct(toks[j], "<")) {
        const size_t past = SkipAngles(toks, j, 64);
        if (past == kNpos) {
          continue;
        }
        j = past;
      }
      if (j + 1 < toks.size() && IsIdent(toks[j]) &&
          IsPunct(toks[j + 1], "(")) {
        const size_t close = MatchParen(toks, j + 1);
        if (close != kNpos && close > j + 2) {
          LockAcquisition acq;
          acq.lock_expr = FlattenExpr(toks, j + 2, close);
          acq.lock = Qualify(fn.scope, acq.lock_expr);
          acq.line = toks[j].line;
          acq.held = held_ids();
          trace.acquisitions.push_back(acq);
          held.push_back(Held{acq.lock, depth, /*raii=*/true});
          i = close;
        }
      }
      continue;
    }

    // Explicit `expr.Lock()` / `expr.Unlock()`, and `cv.Wait(mu)`.
    const bool member_call =
        i >= 1 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")) &&
        i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
    if (!member_call) {
      continue;
    }
    if (t.text == "Lock" || t.text == "Unlock") {
      // Receiver: the member chain ending just before the '.'/'->'.
      size_t k = i - 1;
      if (k < 1 || !IsIdent(toks[k - 1])) {
        continue;
      }
      size_t start = k - 1;
      while (start >= 2 &&
             (IsPunct(toks[start - 1], ".") || IsPunct(toks[start - 1], "->") ||
              IsPunct(toks[start - 1], "::")) &&
             IsIdent(toks[start - 2])) {
        start -= 2;
      }
      const std::string expr = FlattenExpr(toks, start, i - 1);
      const std::string id = Qualify(fn.scope, expr);
      if (t.text == "Lock") {
        LockAcquisition acq;
        acq.lock_expr = expr;
        acq.lock = id;
        acq.line = t.line;
        acq.held = held_ids();
        trace.acquisitions.push_back(acq);
        held.push_back(Held{id, depth, /*raii=*/false});
      } else {
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].id == id) {
            held.erase(held.begin() + static_cast<ptrdiff_t>(h));
            break;
          }
        }
      }
      continue;
    }
    if (t.text == "Wait") {
      const size_t close = MatchParen(toks, i + 1);
      if (close == kNpos || close == i + 2) {
        continue;  // Unbalanced, or no mutex argument (not a CondVar wait).
      }
      WaitSite site;
      site.wait_lock_expr = FlattenExpr(toks, i + 2, close);
      site.wait_lock = Qualify(fn.scope, site.wait_lock_expr);
      site.line = t.line;
      site.held = held_ids();
      trace.waits.push_back(site);
      i = close;
      continue;
    }
  }
  return trace;
}

std::vector<TaintedUse> TraceWireTaint(const LexedFile& lexed,
                                       const FlowFunction& fn) {
  const std::vector<Token>& toks = lexed.tokens;
  std::vector<TaintedUse> uses;

  struct Taint {
    std::string source;
    int line = 0;
  };
  std::map<std::string, Taint> tainted;

  // True when any chain inside [begin, end) is currently tainted; the
  // first such chain's name and taint are reported through the out-params.
  auto scan_for_taint = [&](size_t begin, size_t end, std::string* name,
                            Taint* taint) {
    for (size_t k = begin; k < end; ++k) {
      if (!IsIdent(toks[k])) {
        continue;
      }
      Chain c = ReadChain(toks, k);
      auto it = tainted.find(c.flat);
      if (it != tainted.end()) {
        *name = c.flat;
        *taint = it->second;
        return true;
      }
      k = c.end - 1;
    }
    return false;
  };

  // End of the current statement: the ';' at parenthesis depth zero.
  auto statement_end = [&](size_t begin) {
    int pd = 0;
    for (size_t k = begin; k < fn.body_end; ++k) {
      if (IsPunct(toks[k], "(") || IsPunct(toks[k], "[")) {
        ++pd;
      } else if (IsPunct(toks[k], ")") || IsPunct(toks[k], "]")) {
        --pd;
      } else if (pd <= 0 && (IsPunct(toks[k], ";") || IsPunct(toks[k], "{") ||
                             IsPunct(toks[k], "}"))) {
        return k;
      }
    }
    return fn.body_end;
  };

  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];

    // `new T[expr]` with a tainted extent.
    if (IsIdent(t, "new")) {
      size_t j = i + 1;
      while (j < fn.body_end &&
             (IsIdent(toks[j]) || IsPunct(toks[j], "::") ||
              IsPunct(toks[j], "*") || IsPunct(toks[j], "<") ||
              IsPunct(toks[j], ">") || toks[j].kind == TokenKind::kNumber ||
              IsPunct(toks[j], ","))) {
        ++j;
      }
      if (j < fn.body_end && IsPunct(toks[j], "[")) {
        size_t close = j;
        int bd = 0;
        while (close < fn.body_end) {
          if (IsPunct(toks[close], "[")) {
            ++bd;
          } else if (IsPunct(toks[close], "]")) {
            if (--bd == 0) {
              break;
            }
          }
          ++close;
        }
        std::string name;
        Taint taint;
        if (close < fn.body_end && scan_for_taint(j + 1, close, &name, &taint)) {
          TaintedUse use;
          use.variable = name;
          use.sink = "new[]";
          use.sink_expr = FlattenExpr(toks, i + 1, j);
          use.line = t.line;
          use.source = taint.source;
          use.source_line = taint.line;
          uses.push_back(use);
        }
        if (close < fn.body_end) {
          i = close;  // The extent is new[]'s, not a subscript's.
        }
      }
      continue;
    }

    // Subscript with a tainted index: `recv[expr]` (never a lambda capture
    // list or attribute — those are not preceded by a value token).
    if (IsPunct(t, "[") && i >= 1 &&
        (IsIdent(toks[i - 1]) || IsPunct(toks[i - 1], ")") ||
         IsPunct(toks[i - 1], "]"))) {
      size_t close = i;
      int bd = 0;
      while (close < fn.body_end) {
        if (IsPunct(toks[close], "[")) {
          ++bd;
        } else if (IsPunct(toks[close], "]")) {
          if (--bd == 0) {
            break;
          }
        }
        ++close;
      }
      std::string name;
      Taint taint;
      if (close < fn.body_end && scan_for_taint(i + 1, close, &name, &taint)) {
        TaintedUse use;
        use.variable = name;
        use.sink = "index";
        use.sink_expr = IsIdent(toks[i - 1]) ? toks[i - 1].text : "";
        use.line = t.line;
        use.source = taint.source;
        use.source_line = taint.line;
        uses.push_back(use);
        i = close;
      }
      continue;
    }

    if (!IsIdent(t)) {
      continue;
    }

    Chain chain = ReadChain(toks, i);
    const std::string& last = chain.comps.back();
    const bool call =
        chain.end < fn.body_end && IsPunct(toks[chain.end], "(");

    if (call && IsCursorReadName(last)) {
      // Cursor length read: taint the out-argument.
      const size_t close = MatchParen(toks, chain.end);
      if (close != kNpos) {
        for (size_t k = chain.end + 1; k < close; ++k) {
          if (IsIdent(toks[k])) {
            Chain arg = ReadChain(toks, k);
            tainted[arg.flat] = Taint{last, t.line};
            break;
          }
        }
        i = close;
      }
      continue;
    }

    if (call && (last == "resize" || last == "reserve") &&
        chain.comps.size() >= 2) {
      const size_t close = MatchParen(toks, chain.end);
      std::string name;
      Taint taint;
      if (close != kNpos &&
          scan_for_taint(chain.end + 1, close, &name, &taint)) {
        TaintedUse use;
        use.variable = name;
        use.sink = last;
        use.sink_expr = ChainReceiver(toks, i, chain);
        use.line = t.line;
        use.source = taint.source;
        use.source_line = taint.line;
        uses.push_back(use);
        i = close;
        continue;
      }
      i = chain.end - 1;
      continue;
    }

    const Token* nxt = chain.end < fn.body_end ? &toks[chain.end] : nullptr;
    const Token* prv = i >= fn.body_begin + 1 ? &toks[i - 1] : nullptr;
    const bool prv_is_cmp =
        prv != nullptr &&
        (IsPunct(*prv, "<") || IsPunct(*prv, ">") ||
         (IsPunct(*prv, "=") && i >= fn.body_begin + 2 &&
          (IsPunct(toks[i - 2], "<") || IsPunct(toks[i - 2], ">") ||
           IsPunct(toks[i - 2], "!") || IsPunct(toks[i - 2], "="))));
    const bool nxt_is_cmp =
        nxt != nullptr &&
        (IsPunct(*nxt, "<") || IsPunct(*nxt, ">") ||
         (IsPunct(*nxt, "!") && chain.end + 1 < fn.body_end &&
          IsPunct(toks[chain.end + 1], "=")) ||
         (IsPunct(*nxt, "=") && chain.end + 1 < fn.body_end &&
          IsPunct(toks[chain.end + 1], "=")));
    const bool nxt_is_assign =
        nxt != nullptr && IsPunct(*nxt, "=") && !nxt_is_cmp && !prv_is_cmp &&
        !(prv != nullptr && IsPunct(*prv, "!"));

    auto it = tainted.find(chain.flat);
    if (it != tainted.end() && (nxt_is_cmp || prv_is_cmp)) {
      // A bounds comparison sanitises the value from here on.
      tainted.erase(it);
      i = chain.end - 1;
      continue;
    }
    if (nxt_is_assign) {
      // `chain = rhs;` — taint follows the right-hand side.
      const size_t end = statement_end(chain.end + 1);
      std::string name;
      Taint taint;
      if (scan_for_taint(chain.end + 1, end, &name, &taint)) {
        tainted[chain.flat] = taint;
      } else {
        tainted.erase(chain.flat);
      }
      i = chain.end;  // Re-scan the RHS for comparisons and sinks.
      continue;
    }
    i = chain.end - 1;
  }
  return uses;
}

}  // namespace lint
}  // namespace kondo
