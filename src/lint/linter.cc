#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "lint/include_graph.h"
#include "lint/lexer.h"

namespace kondo {
namespace lint {
namespace {

namespace fs = std::filesystem;

bool IsCppSource(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hh" || ext == ".hpp" || ext == ".cc" ||
         ext == ".cpp" || ext == ".cxx" || ext == ".inl" || ext == ".inc";
}

/// `path` relative to `root`, with '/' separators (report format).
std::string RelativeTo(const fs::path& path, const fs::path& root) {
  return fs::relative(path, root).generic_string();
}

StatusOr<std::string> ReadFileToString(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return InternalError("cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

StatusOr<LintReport> RunLint(const LintOptions& options) {
  const fs::path root(options.root);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return InvalidArgumentError("lint root is not a directory: " +
                                options.root);
  }

  // Discover files. A std::map keyed by repo-relative path makes every
  // later stage — include resolution, criticality, reporting — ordered and
  // therefore deterministic.
  std::map<std::string, LexedFile> files;
  for (const std::string& rel : options.paths) {
    const fs::path at = root / rel;
    if (fs::is_regular_file(at, ec)) {
      KONDO_ASSIGN_OR_RETURN(std::string source, ReadFileToString(at));
      files[RelativeTo(at, root)] = Lex(source);
      continue;
    }
    if (!fs::is_directory(at, ec)) {
      return InvalidArgumentError("no such file or directory under root: " +
                                  rel);
    }
    for (fs::recursive_directory_iterator it(at, ec), end; it != end;
         it.increment(ec)) {
      if (ec) {
        return InternalError("walking " + rel + ": " + ec.message());
      }
      if (!it->is_regular_file() || !IsCppSource(it->path())) {
        continue;
      }
      KONDO_ASSIGN_OR_RETURN(std::string source,
                             ReadFileToString(it->path()));
      files[RelativeTo(it->path(), root)] = Lex(source);
    }
  }

  const IncludeGraph graph = IncludeGraph::Build(files);
  std::set<std::string> critical =
      graph.CriticalClosure(options.critical_modules);

  // The closure walks *includes of* critical files, which can never reach a
  // .cc — yet src/array/index_set.cc shapes fuzz results exactly as much as
  // the index_set.h that src/fuzz includes. An implementation file inherits
  // the criticality of its same-stem header.
  for (const auto& [path, lexed] : files) {
    (void)lexed;
    const size_t dot = path.rfind('.');
    if (dot == std::string::npos || critical.count(path) > 0) {
      continue;
    }
    const std::string ext = path.substr(dot);
    if (ext != ".cc" && ext != ".cpp" && ext != ".cxx") {
      continue;
    }
    for (const char* header_ext : {".h", ".hh", ".hpp"}) {
      if (critical.count(path.substr(0, dot) + header_ext) > 0) {
        critical.insert(path);
        break;
      }
    }
  }

  // Unordered-container declarations, per file; a file's effective name set
  // is its own plus its direct includes' (a .cc sees its header's members).
  std::map<std::string, std::set<std::string>> declared;
  for (const auto& [path, lexed] : files) {
    declared[path] = CollectUnorderedDeclNames(lexed);
  }

  LintReport report;
  report.files_scanned = static_cast<int>(files.size());
  LockOrderCollector lock_order;
  for (const auto& [path, lexed] : files) {
    std::set<std::string> names = declared[path];
    for (const std::string& inc : graph.DirectIncludes(path)) {
      const auto& inc_names = declared[inc];
      names.insert(inc_names.begin(), inc_names.end());
    }

    FileContext ctx;
    ctx.path = path;
    ctx.lexed = &lexed;
    ctx.critical = critical.count(path) > 0;
    ctx.unordered_names = &names;
    report.suppressed += CheckFile(ctx, options.rules, &report.findings);
    if (options.rules.count("R5") > 0) {
      lock_order.AddFile(ctx);
    }
  }
  if (options.rules.count("R5") > 0) {
    // R5 is a whole-closure analysis: its findings only exist once every
    // file has fed the acquisition-order graph.
    report.suppressed += lock_order.Finish(&report.findings);
    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
  }
  return report;
}

void PrintReport(const LintReport& report, std::ostream& out) {
  for (const Finding& finding : report.findings) {
    out << finding.file << ":" << finding.line << ": [" << finding.rule
        << "] " << finding.message << "\n";
  }
  out << "kondo-lint: " << report.findings.size() << " finding(s) across "
      << report.files_scanned << " file(s)";
  if (report.suppressed > 0) {
    out << " (" << report.suppressed << " suppressed)";
  }
  out << "\n";
}

void PrintJsonReport(const LintReport& report, std::ostream& out) {
  const auto escape = [](const std::string& s) {
    std::string esc;
    esc.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"':
          esc += "\\\"";
          break;
        case '\\':
          esc += "\\\\";
          break;
        case '\n':
          esc += "\\n";
          break;
        case '\t':
          esc += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            constexpr char kHex[] = "0123456789abcdef";
            esc += "\\u00";
            esc += kHex[(c >> 4) & 0xf];
            esc += kHex[c & 0xf];
          } else {
            esc += c;
          }
      }
    }
    return esc;
  };

  out << "{\n"
      << "  \"tool\": \"kondo-lint\",\n"
      << "  \"files_scanned\": " << report.files_scanned << ",\n"
      << "  \"suppressed\": " << report.suppressed << ",\n"
      << "  \"findings\": [";
  for (size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"file\": \"" << escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \"" << escape(f.rule)
        << "\", \"message\": \"" << escape(f.message) << "\"}";
  }
  out << (report.findings.empty() ? "]\n" : "\n  ]\n") << "}\n";
}

int LintMain(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  LintOptions options;
  std::vector<std::string> paths;
  std::string format = "text";

  auto value_of = [](const std::string& arg,
                     const std::string& flag) -> const char* {
    if (StartsWith(arg, flag + "=")) {
      return arg.c_str() + flag.size() + 1;
    }
    return nullptr;
  };

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      out << "usage: kondo_lint [--root DIR] [--rules R1,R2,...] "
             "[--format text|json] [path...]\n\n"
             "Lints C++ sources for Kondo's determinism & concurrency\n"
             "invariants (default tree: src/ under --root, default rules\n"
             "R1-R6; see docs/STATIC_ANALYSIS.md).\n\n"
             "exit codes: 0 clean, 1 findings, 2 usage/IO error\n";
      return 0;
    }
    if (const char* v = value_of(arg, "--format")) {
      format = v;
      continue;
    }
    if (arg == "--format" && i + 1 < args.size()) {
      format = args[++i];
      continue;
    }
    if (const char* v = value_of(arg, "--root")) {
      options.root = v;
      continue;
    }
    if (arg == "--root" && i + 1 < args.size()) {
      options.root = args[++i];
      continue;
    }
    if (const char* v = value_of(arg, "--rules")) {
      options.rules.clear();
      std::string id;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!id.empty()) {
            options.rules.insert(id);
          }
          id.clear();
          if (*p == '\0') {
            break;
          }
        } else {
          id += *p;
        }
      }
      continue;
    }
    if (arg == "--rules" && i + 1 < args.size()) {
      // Re-enter the '=' path for a uniform parse.
      const std::string joined = "--rules=" + args[++i];
      options.rules.clear();
      std::string id;
      for (const char* p = joined.c_str() + 8;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!id.empty()) {
            options.rules.insert(id);
          }
          id.clear();
          if (*p == '\0') {
            break;
          }
        } else {
          id += *p;
        }
      }
      continue;
    }
    if (StartsWith(arg, "-")) {
      err << "kondo_lint: unknown flag '" << arg << "'\n"
          << "usage: kondo_lint [--root DIR] [--rules R1,R2,...] "
             "[--format text|json] [path...]\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (format != "text" && format != "json") {
    err << "kondo_lint: unknown --format '" << format
        << "' (expected text or json)\n";
    return 2;
  }
  if (!paths.empty()) {
    options.paths = std::move(paths);
  }

  const StatusOr<LintReport> report = RunLint(options);
  if (!report.ok()) {
    err << "kondo_lint: " << report.status() << "\n";
    return 2;
  }
  if (format == "json") {
    PrintJsonReport(*report, out);
  } else {
    PrintReport(*report, out);
  }
  return report->findings.empty() ? 0 : 1;
}

}  // namespace lint
}  // namespace kondo
