#include "lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace kondo {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Scanner state threaded through the helpers below.
struct Cursor {
  std::string_view src;
  size_t pos = 0;
  int line = 1;

  bool Done() const { return pos >= src.size(); }
  char Peek(size_t ahead = 0) const {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }
  void Advance() {
    if (src[pos] == '\n') {
      ++line;
    }
    ++pos;
  }
};

/// Parses a `kondo-lint:` directive out of comment text. Returns true when
/// the comment contains a directive at all; `*rules` receives the allowed
/// rule ids and `*ok` whether the directive was well-formed.
bool ParseDirective(std::string_view comment, std::set<std::string>* rules,
                    bool* ok) {
  // A directive must open the comment (after the comment markers): prose
  // that merely *mentions* the syntax — docs, error messages — is ignored.
  size_t start = 0;
  while (start < comment.size() &&
         (comment[start] == '/' || comment[start] == '*' ||
          comment[start] == '!' ||
          std::isspace(static_cast<unsigned char>(comment[start])))) {
    ++start;
  }
  constexpr std::string_view kPrefix = "kondo-lint:";
  if (comment.substr(start, kPrefix.size()) != kPrefix) {
    return false;
  }
  const size_t at = start;
  *ok = false;
  std::string_view rest = comment.substr(at + kPrefix.size());
  size_t i = 0;
  while (i < rest.size() && std::isspace(static_cast<unsigned char>(rest[i]))) {
    ++i;
  }
  if (rest.substr(i, 5) != "allow") {
    return true;  // Directive present but not understood.
  }
  i += 5;
  while (i < rest.size() && std::isspace(static_cast<unsigned char>(rest[i]))) {
    ++i;
  }
  if (i >= rest.size() || rest[i] != '(') {
    return true;
  }
  ++i;
  std::string id;
  bool any = false;
  for (; i < rest.size(); ++i) {
    const char c = rest[i];
    if (c == ')') {
      if (!id.empty()) {
        rules->insert(id);
        any = true;
      }
      *ok = any;  // `allow()` with an empty list is malformed.
      return true;
    }
    if (c == ',') {
      if (!id.empty()) {
        rules->insert(id);
        any = true;
      }
      id.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      id += c;
    }
  }
  return true;  // Unterminated rule list: malformed.
}

/// Records the suppression carried by a comment. A comment with no code
/// token before it on its own line ("standalone") also covers the next
/// line; an end-of-line comment covers only its line.
void RecordComment(std::string_view text, int comment_line, bool standalone,
                   LexedFile* out) {
  std::set<std::string> rules;
  bool ok = false;
  if (!ParseDirective(text, &rules, &ok)) {
    return;
  }
  if (!ok) {
    out->malformed_directives.emplace_back(
        comment_line,
        "unparseable kondo-lint directive (expected "
        "`kondo-lint: allow(R1[,R2...]) reason`)");
    return;
  }
  out->suppressions[comment_line].insert(rules.begin(), rules.end());
  if (standalone) {
    out->suppressions[comment_line + 1].insert(rules.begin(), rules.end());
  }
}

}  // namespace

LexedFile Lex(std::string_view source) {
  LexedFile out;
  Cursor c{source};
  int last_token_line = 0;  // Line of the most recent emitted token.

  auto emit = [&](TokenKind kind, std::string text, int line) {
    out.tokens.push_back(Token{kind, std::move(text), line});
    last_token_line = line;
  };

  while (!c.Done()) {
    const char ch = c.Peek();

    if (ch == '\n' || std::isspace(static_cast<unsigned char>(ch))) {
      c.Advance();
      continue;
    }

    // Line comment.
    if (ch == '/' && c.Peek(1) == '/') {
      const int line = c.line;
      const bool standalone = last_token_line != line;
      std::string text;
      while (!c.Done() && c.Peek() != '\n') {
        text += c.Peek();
        c.Advance();
      }
      RecordComment(text, line, standalone, &out);
      continue;
    }

    // Block comment. A directive inside one anchors to the comment's first
    // line, consistent with the line-comment rule.
    if (ch == '/' && c.Peek(1) == '*') {
      const int line = c.line;
      const bool standalone = last_token_line != line;
      std::string text;
      c.Advance();
      c.Advance();
      while (!c.Done() && !(c.Peek() == '*' && c.Peek(1) == '/')) {
        text += c.Peek();
        c.Advance();
      }
      if (!c.Done()) {
        c.Advance();
        c.Advance();
      }
      RecordComment(text, line, standalone, &out);
      continue;
    }

    // String literal (handles escapes).
    if (ch == '"') {
      const int line = c.line;
      std::string text;
      c.Advance();
      while (!c.Done() && c.Peek() != '"') {
        if (c.Peek() == '\\' && c.Peek(1) != '\0') {
          text += c.Peek();
          c.Advance();
        }
        text += c.Peek();
        c.Advance();
      }
      if (!c.Done()) {
        c.Advance();
      }
      emit(TokenKind::kString, std::move(text), line);
      continue;
    }

    // Char literal.
    if (ch == '\'') {
      const int line = c.line;
      std::string text;
      c.Advance();
      while (!c.Done() && c.Peek() != '\'') {
        if (c.Peek() == '\\' && c.Peek(1) != '\0') {
          text += c.Peek();
          c.Advance();
        }
        text += c.Peek();
        c.Advance();
      }
      if (!c.Done()) {
        c.Advance();
      }
      emit(TokenKind::kChar, std::move(text), line);
      continue;
    }

    // Identifier / keyword — with raw-string detection: an identifier
    // ending in 'R' immediately followed by '"' opens R"delim(...)delim".
    if (IsIdentStart(ch)) {
      const int line = c.line;
      std::string text;
      while (!c.Done() && IsIdentChar(c.Peek())) {
        text += c.Peek();
        c.Advance();
      }
      if (!text.empty() && text.back() == 'R' && c.Peek() == '"') {
        c.Advance();  // Consume the quote.
        std::string delim;
        while (!c.Done() && c.Peek() != '(') {
          delim += c.Peek();
          c.Advance();
        }
        if (!c.Done()) {
          c.Advance();  // Consume '('.
        }
        const std::string closer = ")" + delim + "\"";
        std::string body;
        while (!c.Done()) {
          body += c.Peek();
          c.Advance();
          if (body.size() >= closer.size() &&
              body.compare(body.size() - closer.size(), closer.size(),
                           closer) == 0) {
            body.resize(body.size() - closer.size());
            break;
          }
        }
        emit(TokenKind::kString, std::move(body), line);
        continue;
      }
      emit(TokenKind::kIdentifier, std::move(text), line);
      continue;
    }

    // Number (loose: consumes digits, '.', exponent signs, and suffixes —
    // enough to keep numeric text out of the identifier space).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.Peek(1))))) {
      const int line = c.line;
      std::string text;
      while (!c.Done() &&
             (IsIdentChar(c.Peek()) || c.Peek() == '.' ||
              ((c.Peek() == '+' || c.Peek() == '-') && !text.empty() &&
               (text.back() == 'e' || text.back() == 'E' ||
                text.back() == 'p' || text.back() == 'P')))) {
        text += c.Peek();
        c.Advance();
      }
      emit(TokenKind::kNumber, std::move(text), line);
      continue;
    }

    // Punctuation. "::" and "->" are combined (the rules match on them);
    // everything else is a single character, which keeps template-bracket
    // balancing trivial (">>" closes two levels as two tokens).
    {
      const int line = c.line;
      if (ch == ':' && c.Peek(1) == ':') {
        c.Advance();
        c.Advance();
        emit(TokenKind::kPunct, "::", line);
      } else if (ch == '-' && c.Peek(1) == '>') {
        c.Advance();
        c.Advance();
        emit(TokenKind::kPunct, "->", line);
      } else {
        c.Advance();
        emit(TokenKind::kPunct, std::string(1, ch), line);
      }
      continue;
    }
  }
  return out;
}

}  // namespace lint
}  // namespace kondo
