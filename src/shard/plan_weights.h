#ifndef KONDO_SHARD_PLAN_WEIGHTS_H_
#define KONDO_SHARD_PLAN_WEIGHTS_H_

#include <string>
#include <vector>

#include "array/index_set.h"
#include "array/shape.h"
#include "common/statusor.h"
#include "shard/shard_plan.h"

namespace kondo {

/// Weight assigned to an element with observed accesses; unobserved
/// elements get kColdElementWeight so every weight stays positive (the
/// planner requires it) and cold regions still cost a little — they are
/// re-executed by every shard's replicated schedule regardless.
inline constexpr double kHotElementWeight = 1.0;
inline constexpr double kColdElementWeight = 0.01;

/// Derives per-element access-density weights from a prior campaign's
/// KEL2 lineage store (ProvenanceQuery::AccessedRanges per file): elements
/// whose canonical byte range [8i, 8i+8) was touched weigh
/// kHotElementWeight, the rest kColdElementWeight. `file_shapes` must list
/// the campaign's files in ordinal order (file_id = ordinal + 1). A store
/// recording no access at all yields uniform weights — the planner then
/// falls back to element-count balancing.
StatusOr<PlanWeights> WeightsFromLineageStore(
    const std::string& kel2_path, const std::vector<Shape>& file_shapes);

/// Derives the same hot/cold weights from an in-memory pilot campaign's
/// per-file discovered index sets (one IndexSet per file, shapes taken
/// from the sets themselves).
PlanWeights WeightsFromIndexSets(const std::vector<IndexSet>& per_file);

}  // namespace kondo

#endif  // KONDO_SHARD_PLAN_WEIGHTS_H_
