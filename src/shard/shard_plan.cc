#include "shard/shard_plan.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace kondo {

double PlanWeights::FileWeight(int f) const {
  double total = 0.0;
  for (double w : per_file[static_cast<size_t>(f)]) {
    total += w;
  }
  return total;
}

bool PlanWeights::IsUniform() const {
  double first = 0.0;
  bool seen = false;
  for (const std::vector<double>& file : per_file) {
    for (double w : file) {
      if (!seen) {
        first = w;
        seen = true;
      } else if (w != first) {
        return false;
      }
    }
  }
  return true;
}

int64_t Shard::NumElements() const {
  int64_t total = 0;
  for (const ShardSlice& slice : slices) {
    total += slice.NumElements();
  }
  return total;
}

namespace {

/// One whole-file slice.
ShardSlice WholeFile(int file, const Shape& shape) {
  return ShardSlice{file, 0, shape.NumElements()};
}

/// Splits file `file` (with `elements` linear ids) into `parts` contiguous
/// near-equal ranges. Requires 1 <= parts <= elements.
std::vector<ShardSlice> SplitFile(int file, int64_t elements, int64_t parts) {
  std::vector<ShardSlice> slices;
  slices.reserve(static_cast<size_t>(parts));
  for (int64_t p = 0; p < parts; ++p) {
    const int64_t begin = elements * p / parts;
    const int64_t end = elements * (p + 1) / parts;
    slices.push_back(ShardSlice{file, begin, end});
  }
  return slices;
}

}  // namespace

StatusOr<ShardPlan> PlanShards(const std::vector<Shape>& file_shapes,
                               int shards) {
  if (shards <= 0) {
    return InvalidArgumentError(
        StrCat("shards must be positive, got ", shards));
  }
  if (file_shapes.empty()) {
    return InvalidArgumentError("cannot plan shards over zero files");
  }

  ShardPlan plan;
  plan.file_shapes = file_shapes;
  plan.offsets.assign(file_shapes.size() + 1, 0);
  for (size_t f = 0; f < file_shapes.size(); ++f) {
    const int64_t elements = file_shapes[f].NumElements();
    if (elements <= 0) {
      return InvalidArgumentError(
          StrCat("file ", f, " has no elements (shape ",
                 file_shapes[f].ToString(), ")"));
    }
    plan.offsets[f + 1] = plan.offsets[f] + elements;
  }

  const int files = static_cast<int>(file_shapes.size());
  const int64_t total = plan.offsets.back();

  if (shards >= files) {
    // Per-file shards, with extra splits for the largest files. Each extra
    // split goes to the file whose elements-per-split is currently largest
    // (ties to the lowest ordinal); a file never receives more splits than
    // it has elements, so tiny arrays can yield fewer shards than asked.
    std::vector<int64_t> splits(static_cast<size_t>(files), 1);
    for (int extra = shards - files; extra > 0; --extra) {
      int best = -1;
      int64_t best_load = 0;
      for (int f = 0; f < files; ++f) {
        const int64_t elements = file_shapes[static_cast<size_t>(f)]
                                     .NumElements();
        if (splits[static_cast<size_t>(f)] >= elements) {
          continue;  // Already one element per range.
        }
        const int64_t load = elements / splits[static_cast<size_t>(f)];
        if (load > best_load) {
          best_load = load;
          best = f;
        }
      }
      if (best < 0) {
        break;  // Every file is maximally split.
      }
      ++splits[static_cast<size_t>(best)];
    }
    for (int f = 0; f < files; ++f) {
      for (ShardSlice& slice :
           SplitFile(f, file_shapes[static_cast<size_t>(f)].NumElements(),
                     splits[static_cast<size_t>(f)])) {
        Shard shard;
        shard.id = plan.num_shards();
        shard.slices.push_back(slice);
        plan.shards.push_back(std::move(shard));
      }
    }
  } else {
    // Fewer shards than files: contiguous file groups balanced by element
    // count. Shard s ends at the first file whose cumulative element count
    // reaches (s+1)/shards of the total, always leaving at least one file
    // for each remaining shard.
    int f = 0;
    for (int s = 0; s < shards; ++s) {
      Shard shard;
      shard.id = s;
      const int64_t target = total * (s + 1) / shards;
      do {
        shard.slices.push_back(
            WholeFile(f, file_shapes[static_cast<size_t>(f)]));
        ++f;
      } while (f < files && files - f > shards - s - 1 &&
               plan.offsets[static_cast<size_t>(f)] < target);
      plan.shards.push_back(std::move(shard));
    }
  }

  KONDO_RETURN_IF_ERROR(ValidateShardPlan(plan));
  return plan;
}

namespace {

/// Splits file `file` into `parts` contiguous ranges with near-equal
/// summed weight: boundary p is the largest prefix whose cumulative weight
/// does not exceed p/parts of the file total, clamped so every range keeps
/// at least one element. Requires 1 <= parts <= elements.
std::vector<ShardSlice> SplitFileWeighted(int file,
                                          const std::vector<double>& weights,
                                          int64_t parts) {
  const int64_t elements = static_cast<int64_t>(weights.size());
  std::vector<double> prefix(static_cast<size_t>(elements) + 1, 0.0);
  for (int64_t i = 0; i < elements; ++i) {
    prefix[static_cast<size_t>(i) + 1] =
        prefix[static_cast<size_t>(i)] + weights[static_cast<size_t>(i)];
  }
  const double total = prefix.back();
  std::vector<int64_t> bounds(static_cast<size_t>(parts) + 1, 0);
  bounds[static_cast<size_t>(parts)] = elements;
  for (int64_t p = 1; p < parts; ++p) {
    const double quota = total * static_cast<double>(p) /
                         static_cast<double>(parts);
    // Largest k with prefix(k) <= quota.
    const auto it = std::upper_bound(prefix.begin(), prefix.end(), quota);
    int64_t k = static_cast<int64_t>(it - prefix.begin()) - 1;
    // Clamp: strictly after the previous boundary, and early enough that
    // every remaining range keeps at least one element.
    k = std::max(k, bounds[static_cast<size_t>(p) - 1] + 1);
    k = std::min(k, elements - (parts - p));
    bounds[static_cast<size_t>(p)] = k;
  }
  std::vector<ShardSlice> slices;
  slices.reserve(static_cast<size_t>(parts));
  for (int64_t p = 0; p < parts; ++p) {
    slices.push_back(ShardSlice{file, bounds[static_cast<size_t>(p)],
                                bounds[static_cast<size_t>(p) + 1]});
  }
  return slices;
}

}  // namespace

StatusOr<ShardPlan> PlanShards(const std::vector<Shape>& file_shapes,
                               int shards, const PlanWeights& weights) {
  if (weights.empty() || weights.IsUniform()) {
    return PlanShards(file_shapes, shards);
  }
  if (shards <= 0) {
    return InvalidArgumentError(
        StrCat("shards must be positive, got ", shards));
  }
  if (weights.per_file.size() != file_shapes.size()) {
    return InvalidArgumentError(
        StrCat("plan weights cover ", weights.per_file.size(),
               " files, the campaign has ", file_shapes.size()));
  }
  for (size_t f = 0; f < file_shapes.size(); ++f) {
    const int64_t elements = file_shapes[f].NumElements();
    if (static_cast<int64_t>(weights.per_file[f].size()) != elements) {
      return InvalidArgumentError(
          StrCat("plan weights for file ", f, " cover ",
                 weights.per_file[f].size(), " elements, the file has ",
                 elements));
    }
    for (double w : weights.per_file[f]) {
      if (!std::isfinite(w) || w <= 0.0) {
        return InvalidArgumentError(
            StrCat("plan weights for file ", f,
                   " contain a non-finite or non-positive entry"));
      }
    }
  }

  ShardPlan plan;
  plan.file_shapes = file_shapes;
  plan.offsets.assign(file_shapes.size() + 1, 0);
  for (size_t f = 0; f < file_shapes.size(); ++f) {
    const int64_t elements = file_shapes[f].NumElements();
    if (elements <= 0) {
      return InvalidArgumentError(
          StrCat("file ", f, " has no elements (shape ",
                 file_shapes[f].ToString(), ")"));
    }
    plan.offsets[f + 1] = plan.offsets[f] + elements;
  }

  const int files = static_cast<int>(file_shapes.size());
  std::vector<double> file_weight(static_cast<size_t>(files), 0.0);
  double total_weight = 0.0;
  for (int f = 0; f < files; ++f) {
    file_weight[static_cast<size_t>(f)] = weights.FileWeight(f);
    total_weight += file_weight[static_cast<size_t>(f)];
  }

  if (shards >= files) {
    // Per-file shards, extra splits to the heaviest files: each extra
    // split goes to the file whose weight-per-split is currently largest
    // (ties to the lowest ordinal), mirroring the unweighted planner's
    // elements-per-split rule.
    std::vector<int64_t> splits(static_cast<size_t>(files), 1);
    for (int extra = shards - files; extra > 0; --extra) {
      int best = -1;
      double best_load = 0.0;
      for (int f = 0; f < files; ++f) {
        const int64_t elements =
            file_shapes[static_cast<size_t>(f)].NumElements();
        if (splits[static_cast<size_t>(f)] >= elements) {
          continue;  // Already one element per range.
        }
        const double load = file_weight[static_cast<size_t>(f)] /
                            static_cast<double>(splits[static_cast<size_t>(f)]);
        if (load > best_load) {
          best_load = load;
          best = f;
        }
      }
      if (best < 0) {
        break;  // Every file is maximally split.
      }
      ++splits[static_cast<size_t>(best)];
    }
    for (int f = 0; f < files; ++f) {
      for (ShardSlice& slice :
           SplitFileWeighted(f, weights.per_file[static_cast<size_t>(f)],
                             splits[static_cast<size_t>(f)])) {
        Shard shard;
        shard.id = plan.num_shards();
        shard.slices.push_back(slice);
        plan.shards.push_back(std::move(shard));
      }
    }
  } else {
    // Fewer shards than files: contiguous file groups balanced by summed
    // weight, every group at least one whole file.
    int f = 0;
    double cumulative = 0.0;
    for (int s = 0; s < shards; ++s) {
      Shard shard;
      shard.id = s;
      const double target = total_weight * static_cast<double>(s + 1) /
                            static_cast<double>(shards);
      do {
        shard.slices.push_back(ShardSlice{
            f, 0, file_shapes[static_cast<size_t>(f)].NumElements()});
        cumulative += file_weight[static_cast<size_t>(f)];
        ++f;
      } while (f < files && files - f > shards - s - 1 &&
               cumulative < target);
      plan.shards.push_back(std::move(shard));
    }
  }

  KONDO_RETURN_IF_ERROR(ValidateShardPlan(plan));
  return plan;
}

Status ValidateShardPlan(const ShardPlan& plan) {
  if (plan.file_shapes.empty() || plan.shards.empty()) {
    return InvalidArgumentError("empty shard plan");
  }
  if (plan.offsets.size() != plan.file_shapes.size() + 1) {
    return InternalError("shard plan offsets/shapes mismatch");
  }
  // Collect every slice, sort by (file, begin), and require the slices of
  // each file to tile [0, NumElements) exactly.
  std::vector<ShardSlice> slices;
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    if (plan.shards[s].id != static_cast<int>(s)) {
      return InternalError(StrCat("shard ", s, " has id ", plan.shards[s].id));
    }
    for (const ShardSlice& slice : plan.shards[s].slices) {
      if (slice.file < 0 || slice.file >= plan.num_files()) {
        return InternalError(StrCat("slice names unknown file ", slice.file));
      }
      if (slice.begin < 0 || slice.begin >= slice.end ||
          slice.end >
              plan.file_shapes[static_cast<size_t>(slice.file)]
                  .NumElements()) {
        return InternalError(StrCat("bad slice range [", slice.begin, ",",
                                    slice.end, ") for file ", slice.file));
      }
      slices.push_back(slice);
    }
  }
  std::sort(slices.begin(), slices.end(),
            [](const ShardSlice& a, const ShardSlice& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.begin < b.begin;
            });
  size_t i = 0;
  for (int f = 0; f < plan.num_files(); ++f) {
    int64_t cursor = 0;
    const int64_t elements =
        plan.file_shapes[static_cast<size_t>(f)].NumElements();
    while (cursor < elements) {
      if (i >= slices.size() || slices[i].file != f ||
          slices[i].begin != cursor) {
        return InternalError(
            StrCat("file ", f, " not tiled at linear id ", cursor));
      }
      cursor = slices[i].end;
      ++i;
    }
  }
  if (i != slices.size()) {
    return InternalError("shard plan has overlapping slices");
  }
  return OkStatus();
}

}  // namespace kondo
