#include "shard/shard_manifest.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "provenance/crc32.h"

namespace kondo {

/// Appends the `C <crc32>` trailer over everything already in `body`.
void AppendChecksumTrailer(std::string* body) {
  const uint32_t crc = Crc32(body->data(), body->size());
  body->append(StrCat("C ", crc, "\n"));
}

/// Splits `content` into body + verified trailer. The trailer must be the
/// final line; its checksum must match every preceding byte.
Status StripChecksumTrailer(const std::string& path, std::string* content) {
  const size_t pos = content->rfind("\nC ");
  const bool leading_trailer =
      content->rfind("C ", 0) == 0 && pos == std::string::npos;
  size_t body_end = 0;
  size_t trailer_begin = 0;
  if (pos != std::string::npos) {
    body_end = pos + 1;  // Keep the body's trailing newline.
    trailer_begin = pos + 1;
  } else if (leading_trailer) {
    body_end = 0;
    trailer_begin = 0;
  } else {
    return DataLossError("missing checksum trailer: " + path);
  }
  std::istringstream fields(content->substr(trailer_begin));
  char tag = 0;
  uint32_t expected = 0;
  fields >> tag >> expected;
  if (tag != 'C' || fields.fail()) {
    return DataLossError("bad checksum trailer: " + path);
  }
  const uint32_t actual = Crc32(content->data(), body_end);
  if (actual != expected) {
    return DataLossError(StrCat("checksum mismatch (stored ", expected,
                                ", computed ", actual, "): ", path));
  }
  content->resize(body_end);
  return OkStatus();
}

/// Reads `path` fully (binary) into `out`.
Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return OkStatus();
}

bool ShardManifest::AllFuzzed() const {
  for (ShardStatus status : statuses) {
    if (status != ShardStatus::kFuzzed) {
      return false;
    }
  }
  return !statuses.empty();
}

std::string ShardLineageFileName(int shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%03d.kel2", shard);
  return buf;
}

std::string ShardStateFileName(int shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%03d.kss", shard);
  return buf;
}

ShardManifest MakeShardManifest(const ShardPlan& plan, uint64_t rng_seed) {
  ShardManifest manifest;
  manifest.rng_seed = rng_seed;
  manifest.file_shapes = plan.file_shapes;
  manifest.shards = plan.shards;
  manifest.statuses.assign(plan.shards.size(), ShardStatus::kPending);
  manifest.dispatch_counts.assign(plan.shards.size(), 0);
  return manifest;
}

Status SaveShardManifest(const std::string& path,
                         const ShardManifest& manifest, Env* env) {
  std::ostringstream out;
  out << "KSM1 " << manifest.num_shards() << " " << manifest.rng_seed << " "
      << manifest.file_shapes.size() << " " << (manifest.merged ? 1 : 0)
      << "\n";
  for (const Shape& shape : manifest.file_shapes) {
    out << "F " << shape.rank();
    for (int d = 0; d < shape.rank(); ++d) {
      out << " " << shape.dim(d);
    }
    out << "\n";
  }
  for (int s = 0; s < manifest.num_shards(); ++s) {
    out << "H " << s << " "
        << static_cast<int>(manifest.statuses[static_cast<size_t>(s)])
        << "\n";
  }
  for (const Shard& shard : manifest.shards) {
    for (const ShardSlice& slice : shard.slices) {
      out << "L " << shard.id << " " << slice.file << " " << slice.begin
          << " " << slice.end << "\n";
    }
  }
  for (int s = 0; s < manifest.num_shards(); ++s) {
    const int dispatches =
        static_cast<size_t>(s) < manifest.dispatch_counts.size()
            ? manifest.dispatch_counts[static_cast<size_t>(s)]
            : 0;
    out << "W " << s << " " << dispatches << "\n";
  }
  std::string body = out.str();
  AppendChecksumTrailer(&body);

  StatusOr<AtomicFile> file = AtomicFile::Create(path, env);
  if (!file.ok()) {
    return Status(file.status().code(),
                  StrCat("cannot open shard manifest for write: ", path,
                         ": ", file.status().message()));
  }
  KONDO_RETURN_IF_ERROR(file->Append(body));
  return file->Commit();
}

StatusOr<ShardManifest> LoadShardManifest(const std::string& path) {
  std::string content;
  const Status read = ReadFileToString(path, &content);
  if (!read.ok()) {
    return Status(read.code(), "cannot open shard manifest: " + path);
  }
  {
    const Status verified = StripChecksumTrailer(path, &content);
    if (!verified.ok()) {
      return Status(verified.code(),
                    StrCat("shard manifest ", verified.message()));
    }
  }
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return DataLossError("empty shard manifest: " + path);
  }
  std::istringstream header(line);
  std::string magic;
  int num_shards = 0;
  uint64_t rng_seed = 0;
  size_t num_files = 0;
  int merged = 0;
  header >> magic >> num_shards >> rng_seed >> num_files >> merged;
  if (magic != "KSM1" || num_shards <= 0 || num_files == 0 ||
      (merged != 0 && merged != 1)) {
    return DataLossError("bad shard manifest header: " + path);
  }

  ShardManifest manifest;
  manifest.rng_seed = rng_seed;
  manifest.merged = merged == 1;
  manifest.shards.resize(static_cast<size_t>(num_shards));
  manifest.statuses.assign(static_cast<size_t>(num_shards),
                           ShardStatus::kPending);
  manifest.dispatch_counts.assign(static_cast<size_t>(num_shards), 0);
  for (int s = 0; s < num_shards; ++s) {
    manifest.shards[static_cast<size_t>(s)].id = s;
  }

  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'F') {
      int rank = 0;
      fields >> rank;
      if (rank <= 0) {
        return DataLossError("bad file line in shard manifest: " + line);
      }
      std::vector<int64_t> dims(static_cast<size_t>(rank));
      for (int64_t& dim : dims) {
        if (!(fields >> dim) || dim <= 0) {
          return DataLossError("bad file dims in shard manifest: " + line);
        }
      }
      manifest.file_shapes.emplace_back(dims);
    } else if (tag == 'H') {
      int shard = -1;
      int status = -1;
      fields >> shard >> status;
      if (shard < 0 || shard >= num_shards || (status != 0 && status != 1)) {
        return DataLossError("bad shard status line: " + line);
      }
      manifest.statuses[static_cast<size_t>(shard)] =
          static_cast<ShardStatus>(status);
    } else if (tag == 'L') {
      ShardSlice slice;
      int shard = -1;
      fields >> shard >> slice.file >> slice.begin >> slice.end;
      if (fields.fail() || shard < 0 || shard >= num_shards) {
        return DataLossError("bad slice line in shard manifest: " + line);
      }
      manifest.shards[static_cast<size_t>(shard)].slices.push_back(slice);
    } else if (tag == 'W') {
      int shard = -1;
      int dispatches = -1;
      fields >> shard >> dispatches;
      if (fields.fail() || shard < 0 || shard >= num_shards ||
          dispatches < 0) {
        return DataLossError("bad dispatch line in shard manifest: " + line);
      }
      manifest.dispatch_counts[static_cast<size_t>(shard)] = dispatches;
    } else {
      return DataLossError("unknown shard manifest line: " + line);
    }
  }
  if (manifest.file_shapes.size() != num_files) {
    return DataLossError("shard manifest file count mismatch: " + path);
  }
  return manifest;
}

Status CheckManifestMatchesPlan(const ShardManifest& manifest,
                                const ShardPlan& plan, uint64_t rng_seed) {
  if (manifest.rng_seed != rng_seed) {
    return FailedPreconditionError(
        StrCat("shard manifest was written for rng_seed ", manifest.rng_seed,
               ", this campaign uses ", rng_seed));
  }
  if (manifest.file_shapes != plan.file_shapes) {
    return FailedPreconditionError(
        "shard manifest file shapes do not match the campaign's files");
  }
  if (manifest.num_shards() != plan.num_shards()) {
    return FailedPreconditionError(
        StrCat("shard manifest has ", manifest.num_shards(),
               " shards, the plan has ", plan.num_shards()));
  }
  for (int s = 0; s < plan.num_shards(); ++s) {
    if (manifest.shards[static_cast<size_t>(s)].slices !=
        plan.shards[static_cast<size_t>(s)].slices) {
      return FailedPreconditionError(
          StrCat("shard ", s, " slices differ between manifest and plan"));
    }
  }
  return OkStatus();
}

}  // namespace kondo
