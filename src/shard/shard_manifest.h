#ifndef KONDO_SHARD_SHARD_MANIFEST_H_
#define KONDO_SHARD_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/statusor.h"
#include "shard/shard_plan.h"

namespace kondo {

/// Lifecycle of one shard inside a campaign directory.
enum class ShardStatus {
  kPending = 0,  // Not yet fuzzed (or fuzzing was interrupted).
  kFuzzed = 1,   // Campaign finished; lineage + state files are sealed.
};

/// The on-disk record (`manifest.ksm`) tying a sharded campaign directory
/// together: the plan that produced the shards, the campaign seed, each
/// shard's status, and whether the merged lineage store has been written.
/// Text format (see docs/FORMATS.md):
///
///   KSM1 <num_shards> <rng_seed> <num_files> <merged>
///   F <rank> <dim...>                 one line per file, in ordinal order
///   H <shard> <status>                one line per shard (0=pending 1=fuzzed)
///   L <shard> <file> <begin> <end>    one line per slice, in shard order
///   W <shard> <dispatches>            fleet worker-assignment state: how
///                                     often the shard has been dispatched
///                                     (absent in pre-fleet manifests; the
///                                     loader defaults it to zero)
///   C <crc32>                         checksum over every preceding byte
///
/// The manifest is committed atomically (tmp + fsync + rename) and the
/// trailer is re-verified on load, so a torn or corrupted manifest is
/// detected instead of silently steering a resume.
struct ShardManifest {
  uint64_t rng_seed = 0;
  std::vector<Shape> file_shapes;
  std::vector<Shard> shards;
  std::vector<ShardStatus> statuses;
  /// Fleet accounting: times each shard was handed to a worker (0 for
  /// purely local campaigns). Straggler/crash re-dispatches increment it;
  /// the fleet's duplicate-dispatch cap reads it across resumes.
  std::vector<int> dispatch_counts;
  bool merged = false;

  int num_shards() const { return static_cast<int>(shards.size()); }
  bool AllFuzzed() const;
};

/// Conventional artefact names inside a sharded campaign directory.
inline constexpr char kShardManifestFileName[] = "manifest.ksm";
inline constexpr char kMergedLineageFileName[] = "merged.kel2";

/// "shard-007.kel2": shard `shard`'s KEL2 lineage store.
std::string ShardLineageFileName(int shard);

/// "shard-007.kss": shard `shard`'s campaign state (resume artefact).
std::string ShardStateFileName(int shard);

/// Builds a fresh (all-pending) manifest from a plan and campaign seed.
ShardManifest MakeShardManifest(const ShardPlan& plan, uint64_t rng_seed);

/// Commits the manifest atomically through `env` (nullptr = real
/// filesystem): a crash mid-save leaves the previous manifest intact.
Status SaveShardManifest(const std::string& path,
                         const ShardManifest& manifest, Env* env = nullptr);

/// Loads and CRC-verifies a manifest; a missing or mismatching checksum
/// trailer is kDataLoss.
StatusOr<ShardManifest> LoadShardManifest(const std::string& path);

/// Verifies a loaded manifest describes exactly `plan` under `rng_seed` —
/// the guard that keeps a resumed invocation from silently merging shards
/// of a different campaign into this one.
Status CheckManifestMatchesPlan(const ShardManifest& manifest,
                                const ShardPlan& plan, uint64_t rng_seed);

/// Checksum-trailer plumbing shared by the KSM and KSS text formats.
/// AppendChecksumTrailer appends a `C <crc32>` line covering every byte
/// already in `body`; StripChecksumTrailer verifies and removes it
/// (kDataLoss when missing or mismatching, `path` names the artefact in
/// the message). ReadFileToString reads `path` fully in binary mode.
void AppendChecksumTrailer(std::string* body);
Status StripChecksumTrailer(const std::string& path, std::string* content);
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace kondo

#endif  // KONDO_SHARD_SHARD_MANIFEST_H_
