#ifndef KONDO_SHARD_SHARD_SCHEDULER_H_
#define KONDO_SHARD_SHARD_SCHEDULER_H_

#include <string>
#include <vector>

#include "common/env.h"
#include "common/statusor.h"
#include "core/kondo.h"
#include "shard/merge_stage.h"
#include "shard/shard_manifest.h"
#include "shard/shard_plan.h"
#include "workloads/multi_file_program.h"

namespace kondo {

/// How RunShardedCampaign partitions, persists, and paces a campaign.
struct ShardOptions {
  /// Requested shard count (the planner may return fewer on tiny arrays).
  int shards = 1;

  /// Campaign directory for the manifest, per-shard KEL2 stores, per-shard
  /// state files, and the merged store. Empty runs the campaign entirely
  /// in memory: no lineage, no manifest, no resume.
  std::string output_dir;

  /// Upper bound on shards fuzzed by *this* invocation (0 = all remaining).
  /// With a campaign directory, a later invocation picks up the pending
  /// shards from the manifest and merges once every shard is fuzzed.
  int max_shards_this_run = 0;

  /// Access-density weights steering the planner (empty = element-count
  /// balancing). A resumed campaign must pass the same weights: the
  /// manifest records the resulting slices and CheckManifestMatchesPlan
  /// rejects a plan whose boundaries moved.
  PlanWeights plan_weights;

  /// Filesystem used for every artefact the scheduler commits (manifest,
  /// per-shard KEL2 + KSS, merged store). nullptr = the real filesystem;
  /// tests inject a FaultInjectingEnv here to simulate crashes and ENOSPC
  /// at any write. All artefacts commit via tmp + fsync + rename, so a
  /// crash at any point leaves either the previous file or nothing — never
  /// a torn artefact — and a later invocation resumes from the manifest.
  Env* env = nullptr;
};

/// Outcome of one scheduler invocation.
struct ShardedRunResult {
  /// Valid only when `complete`: the merged campaign, bit-identical to the
  /// unsharded RunMultiFileKondo output.
  MergedCampaign merged;
  bool complete = false;
  int shards_fuzzed_now = 0;  // Shards campaigned by this invocation.
  int shards_total = 0;
  /// Path of the merged KEL2 store ("" in in-memory mode).
  std::string merged_lineage_path;
};

/// Plans shards, runs one full fuzz campaign per shard, and merges.
///
/// Scheduling: all shard campaigns share ONE ThreadPool of
/// `ClampJobs(config.jobs)` workers. Each running shard is driven by a
/// dedicated driver thread holding a non-owning CampaignExecutor over the
/// shared pool — drivers block on their batches outside the pool, so
/// debloat tests from every shard interleave freely on the workers and the
/// machine is never oversubscribed beyond `jobs` (plus the coordinating
/// drivers, which are idle while tests run). With `jobs == 1` the shards
/// simply run back-to-back on the calling thread.
///
/// Every shard replays the identical schedule (see RunShardCampaign), so
/// the merged result — index sets, carve stats, fuzz statistics, and the
/// merged lineage store — is bit-identical to `shards = 1` at every jobs
/// setting.
StatusOr<ShardedRunResult> RunShardedCampaign(const MultiFileProgram& program,
                                              const KondoConfig& config,
                                              const ShardOptions& options);

/// mkdir -p: creates `path` and any missing parents. The scheduler calls
/// this for its campaign directory; exposed for callers (the CLI) that
/// write sibling artefacts into the same tree.
Status EnsureCampaignDirectory(const std::string& path);

/// Loads shard `s`'s sealed artefacts from campaign directory `dir` and
/// re-verifies them: the KSS checksum trailer plus the KEL2 store's
/// whole-file byte/CRC fingerprint against the KSS `A` line. A non-OK
/// status describes the damage; the caller demotes the shard to pending
/// and re-runs it. The local resume path and the fleet coordinator share
/// this rule — a crashed *worker* is handled exactly like a damaged
/// on-disk shard.
StatusOr<ShardCampaignResult> LoadVerifiedShard(const std::string& dir,
                                                int s, const ShardPlan& plan);

}  // namespace kondo

#endif  // KONDO_SHARD_SHARD_SCHEDULER_H_
