#ifndef KONDO_SHARD_MERGE_STAGE_H_
#define KONDO_SHARD_MERGE_STAGE_H_

#include <string>
#include <vector>

#include "array/index_set.h"
#include "carve/carver.h"
#include "common/statusor.h"
#include "core/kondo.h"
#include "exec/campaign_executor.h"
#include "provenance/kel2_writer.h"
#include "shard/shard_campaign.h"
#include "shard/shard_plan.h"

namespace kondo {

/// The deterministic fold of a sharded campaign — structurally the
/// multi-file pipeline's output (core converts it to MultiKondoResult; the
/// struct is redeclared here so src/shard/ stays below src/core/ in the
/// layering).
struct MergedCampaign {
  FuzzStats fuzz_stats;
  /// The (shard-invariant) seed scatter, taken from shard 0's replay.
  std::vector<Seed> seeds;
  std::vector<IndexSet> per_file_discovered;
  std::vector<IndexSet> per_file_approx;
  std::vector<CarveStats> per_file_carve_stats;
};

/// Folds per-shard campaign results into the unsharded result:
///  * verifies the replicated schedules agreed — every deterministic
///    FuzzStats field must be identical across shards (divergence is an
///    internal error: the shards did not replay the same campaign);
///    `elapsed_seconds` is folded as the max;
///  * unions the slice-restricted per-file index sets (an exact partition,
///    so the union is the unsharded discovery set);
///  * carves each file — serially over files, but with every merge
///    round's CLOSE-pair scan parallelised over `executor` — and
///    rasterises each file's hulls in parallel (never nesting ParallelFor
///    inside a pool task).
/// The output is bit-identical to the unsharded RunMultiFileKondo at every
/// shard and jobs setting.
StatusOr<MergedCampaign> MergeShardCampaigns(
    const ShardPlan& plan,
    const std::vector<ShardCampaignResult>& shard_results,
    const KondoConfig& config, CampaignExecutor& executor);

/// Decodes every per-shard KEL2 store, regroups events into per-run
/// (pid ascending), per-file (file_id ascending) coalesced byte ranges,
/// and re-encodes them through one CampaignLineageSink at `merged_path`.
/// Because the canonical encoding is a pure function of the merged ranges
/// — and re-coalescing joins ranges that a chunk-range slice boundary had
/// split — the merged store's bytes are identical for every shard count.
Status MergeShardLineageStores(const std::vector<std::string>& shard_paths,
                               const std::string& merged_path,
                               Kel2WriterOptions options = {});

}  // namespace kondo

#endif  // KONDO_SHARD_MERGE_STAGE_H_
