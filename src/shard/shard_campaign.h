#ifndef KONDO_SHARD_SHARD_CAMPAIGN_H_
#define KONDO_SHARD_SHARD_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/index_set.h"
#include "audit/auditor.h"
#include "common/env.h"
#include "common/statusor.h"
#include "core/kondo.h"
#include "exec/campaign_executor.h"
#include "fuzz/fuzz_schedule.h"
#include "shard/shard_plan.h"
#include "workloads/multi_file_program.h"

namespace kondo {

/// Bytes one array element occupies in the canonical lineage encoding: a
/// linear id `i` maps to the byte range [8i, 8i + 8) of its file. The
/// constant only names an encoding, not a real element width — per-shard
/// stores record *which* elements a run touched, and 8 bytes is the
/// paper's double-precision default.
inline constexpr int64_t kLineageElemBytes = 8;

/// Outcome of one shard's campaign: per-file index subsets restricted to
/// the shard's slices, plus the (shard-invariant) fuzz statistics and seed
/// scatter of the replicated schedule.
struct ShardCampaignResult {
  std::vector<IndexSet> per_file;
  std::vector<Seed> seeds;
  FuzzStats stats;
};

/// Runs shard `shard`'s full fuzz campaign over `executor`.
///
/// Every shard replays the *identical* schedule: candidates are generated
/// from the same campaign seed and progress/stopping decisions track the
/// combined accessed set over all files — so each shard makes exactly the
/// decisions the unsharded campaign makes, and the per-shard statistics and
/// consumed-candidate sequence are bit-identical across shards. What
/// differs is collection: a shard keeps only the index points falling
/// inside its slices, and persists lineage (through `persist`, when set)
/// only for its partition — the canonical per-run event logs described in
/// docs/FORMATS.md. The union of all shards therefore reproduces the
/// unsharded result exactly, at the cost of re-running the (cheap) tests
/// per shard — which is what lets shards proceed with no cross-shard
/// communication until the merge.
///
/// Returns non-OK only on infrastructure failure (the lineage persister
/// could not write); persistent debloat-test failures are quarantined in
/// the returned stats instead.
StatusOr<ShardCampaignResult> RunShardCampaign(
    const MultiFileProgram& program, const ShardPlan& plan,
    const Shard& shard, const KondoConfig& config, CampaignExecutor& executor,
    const AuditPersistFn& persist = {});

/// Whole-file fingerprint of a sealed shard artefact (its KEL2 lineage
/// store), recorded in the shard's KSS so a resume can detect a
/// truncated or corrupted artefact — Kel2Reader alone silently drops a
/// torn tail, which is exactly the corruption a crash leaves behind.
struct ShardArtifactInfo {
  int64_t lineage_bytes = -1;  // -1 = no lineage store recorded.
  uint32_t lineage_crc = 0;
};

/// Reads `path` fully and returns its byte count + CRC32 (kNotFound when
/// missing).
StatusOr<ShardArtifactInfo> HashFileArtifact(const std::string& path);

/// Saves / loads a shard's campaign outcome (`shard-NNN.kss`) so a later
/// invocation can merge without re-fuzzing. Text format (docs/FORMATS.md):
///
///   KSS1 <shard> <num_files>
///   T <iterations> <evaluations> <useful> <restarts> <epsilon> <elapsed>
///     <stopped_by_stagnation> <stopped_by_budget> <stopped_by_eval_budget>
///     <retries> <quarantined>
///   S <useful> <v...>        seeds, full double precision, consumption order
///   Q <v...>                 quarantined parameter points, in order
///   I <file> <linear>        discovered ids, per file, ascending
///   A <bytes> <crc32>        sealed lineage-store fingerprint (optional)
///   C <crc32>                checksum over every preceding byte
///
/// The state is committed atomically (tmp + fsync + rename) through `env`
/// and the checksum trailer is verified on load.
Status SaveShardState(const std::string& path, int shard,
                      const ShardCampaignResult& result,
                      const ShardArtifactInfo& info = {}, Env* env = nullptr);
StatusOr<ShardCampaignResult> LoadShardState(
    const std::string& path, int shard,
    const std::vector<Shape>& file_shapes,
    ShardArtifactInfo* info_out = nullptr);

/// The codec under Save/LoadShardState, exposed so fleet workers can
/// stream KSS bytes over the wire and the coordinator can verify them
/// before anything touches disk. EncodeShardState returns the complete
/// file image (trailer included); DecodeShardState checksum-verifies and
/// parses one (`source` names the artefact — a path or a peer — in error
/// messages).
std::string EncodeShardState(int shard, const ShardCampaignResult& result,
                             const ShardArtifactInfo& info = {});
StatusOr<ShardCampaignResult> DecodeShardState(
    std::string content, const std::string& source, int shard,
    const std::vector<Shape>& file_shapes,
    ShardArtifactInfo* info_out = nullptr);

}  // namespace kondo

#endif  // KONDO_SHARD_SHARD_CAMPAIGN_H_
