#include "shard/shard_campaign.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "audit/event_log.h"
#include "common/interval_set.h"
#include "common/strings.h"
#include "exec/result_collector.h"
#include "provenance/crc32.h"
#include "shard/shard_manifest.h"

namespace kondo {
namespace {

/// Builds the canonical lineage log of one consumed debloat test: for each
/// file in ordinal order (file_id = ordinal + 1), the run's accessed linear
/// ids — restricted to this shard's slices — as coalesced byte ranges
/// (id -> [8id, 8id+8)) recorded as positioned reads under pid = 1 + seq.
/// The encoding is a pure function of the restricted index sets, so merging
/// shard stores and re-encoding reproduces identical bytes for any shard
/// count (docs/FORMATS.md).
std::shared_ptr<EventLog> CanonicalLineageLog(
    const std::vector<IndexSet>& per_file, int64_t seq) {
  auto log = std::make_shared<EventLog>();
  bool any = false;
  for (size_t f = 0; f < per_file.size(); ++f) {
    IntervalSet ranges;
    for (int64_t id : per_file[f].ToSortedLinearIds()) {
      ranges.Add(id * kLineageElemBytes, (id + 1) * kLineageElemBytes);
    }
    for (const Interval& range : ranges.ToIntervals()) {
      Event event;
      event.id = EventId{1 + seq, static_cast<int64_t>(f) + 1};
      event.type = EventType::kPread;
      event.offset = range.begin;
      event.size = range.length();
      log->Record(event);
      any = true;
    }
  }
  return any ? log : nullptr;
}

}  // namespace

StatusOr<ShardCampaignResult> RunShardCampaign(
    const MultiFileProgram& program, const ShardPlan& plan,
    const Shard& shard, const KondoConfig& config, CampaignExecutor& executor,
    const AuditPersistFn& persist) {
  const std::vector<Shape>& file_shapes = plan.file_shapes;
  const std::vector<int64_t>& offsets = plan.offsets;
  const Shape combined_shape = plan.combined_shape();

  // The shard's ownership map: per file, the linear-id ranges it collects.
  std::vector<IntervalSet> owned(file_shapes.size());
  for (const ShardSlice& slice : shard.slices) {
    owned[static_cast<size_t>(slice.file)].Add(slice.begin, slice.end);
  }

  const bool build_logs = static_cast<bool>(persist);
  const CandidateTestFn test = [&program, &file_shapes, &offsets,
                                &combined_shape, &owned,
                                build_logs](const TestCandidate& candidate) {
    CandidateResult result;
    result.accessed = IndexSet(combined_shape);
    result.per_file.reserve(file_shapes.size());
    for (const Shape& shape : file_shapes) {
      result.per_file.emplace_back(shape);
    }
    program.Execute(candidate.value, [&](int file, const Index& index) {
      const Shape& shape = file_shapes[static_cast<size_t>(file)];
      if (!shape.Contains(index)) {
        return;
      }
      const int64_t linear = shape.Linearize(index);
      // Progress tracking spans *all* files: the combined accessed set is
      // what the schedule's stopping criteria consume, and it must match
      // the unsharded campaign's trajectory exactly for every shard to
      // replay identical decisions.
      result.accessed.InsertLinear(offsets[static_cast<size_t>(file)] +
                                   linear);
      // Collection is restricted to the shard's own slices.
      if (owned[static_cast<size_t>(file)].Contains(linear)) {
        result.per_file[static_cast<size_t>(file)].InsertLinear(linear);
      }
    });
    if (build_logs) {
      result.log = CanonicalLineageLog(result.per_file, candidate.seq);
    }
    return result;
  };

  ResultCollector collector(combined_shape, persist);
  collector.EnablePerFile(file_shapes);
  FuzzSchedule schedule(program.param_space(), combined_shape, config.fuzz,
                        config.rng_seed);
  FuzzResult fuzz = schedule.Run(executor, test, &collector);
  if (!fuzz.status.ok()) {
    return Status(fuzz.status.code(),
                  StrCat("shard ", shard.id, " campaign aborted: ",
                         fuzz.status.message()));
  }

  ShardCampaignResult result;
  result.per_file = collector.TakePerFile();
  result.seeds = std::move(fuzz.seeds);
  result.stats = std::move(fuzz.stats);
  return result;
}

StatusOr<ShardArtifactInfo> HashFileArtifact(const std::string& path) {
  std::string content;
  KONDO_RETURN_IF_ERROR(ReadFileToString(path, &content));
  ShardArtifactInfo info;
  info.lineage_bytes = static_cast<int64_t>(content.size());
  info.lineage_crc = Crc32(content.data(), content.size());
  return info;
}

std::string EncodeShardState(int shard, const ShardCampaignResult& result,
                             const ShardArtifactInfo& info) {
  std::ostringstream out;
  out << "KSS1 " << shard << " " << result.per_file.size() << "\n";
  const FuzzStats& stats = result.stats;
  char buf[64];
  out << "T " << stats.iterations << " " << stats.evaluations << " "
      << stats.useful_evaluations << " " << stats.restarts;
  std::snprintf(buf, sizeof(buf), " %.17g", stats.final_epsilon);
  out << buf;
  std::snprintf(buf, sizeof(buf), " %.17g", stats.elapsed_seconds);
  out << buf << " " << (stats.stopped_by_stagnation ? 1 : 0) << " "
      << (stats.stopped_by_budget ? 1 : 0) << " "
      << (stats.stopped_by_eval_budget ? 1 : 0) << " " << stats.retries
      << " " << stats.quarantined << "\n";
  for (const Seed& seed : result.seeds) {
    out << "S " << (seed.useful ? 1 : 0);
    for (double v : seed.value) {
      std::snprintf(buf, sizeof(buf), " %.17g", v);
      out << buf;
    }
    out << "\n";
  }
  for (const ParamValue& point : stats.quarantined_points) {
    out << "Q";
    for (double v : point) {
      std::snprintf(buf, sizeof(buf), " %.17g", v);
      out << buf;
    }
    out << "\n";
  }
  for (size_t f = 0; f < result.per_file.size(); ++f) {
    for (int64_t id : result.per_file[f].ToSortedLinearIds()) {
      out << "I " << f << " " << id << "\n";
    }
  }
  if (info.lineage_bytes >= 0) {
    out << "A " << info.lineage_bytes << " " << info.lineage_crc << "\n";
  }
  std::string body = out.str();
  AppendChecksumTrailer(&body);
  return body;
}

Status SaveShardState(const std::string& path, int shard,
                      const ShardCampaignResult& result,
                      const ShardArtifactInfo& info, Env* env) {
  const std::string body = EncodeShardState(shard, result, info);
  StatusOr<AtomicFile> file = AtomicFile::Create(path, env);
  if (!file.ok()) {
    return Status(file.status().code(),
                  StrCat("cannot open shard state for write: ", path, ": ",
                         file.status().message()));
  }
  KONDO_RETURN_IF_ERROR(file->Append(body));
  return file->Commit();
}

StatusOr<ShardCampaignResult> LoadShardState(
    const std::string& path, int shard,
    const std::vector<Shape>& file_shapes, ShardArtifactInfo* info_out) {
  std::string content;
  const Status read = ReadFileToString(path, &content);
  if (!read.ok()) {
    return Status(read.code(), "cannot open shard state: " + path);
  }
  return DecodeShardState(std::move(content), path, shard, file_shapes,
                          info_out);
}

StatusOr<ShardCampaignResult> DecodeShardState(
    std::string content, const std::string& source, int shard,
    const std::vector<Shape>& file_shapes, ShardArtifactInfo* info_out) {
  {
    const Status verified = StripChecksumTrailer(source, &content);
    if (!verified.ok()) {
      return Status(verified.code(),
                    StrCat("shard state ", verified.message()));
    }
  }
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line)) {
    return DataLossError("empty shard state: " + source);
  }
  std::istringstream header(line);
  std::string magic;
  int stored_shard = -1;
  size_t num_files = 0;
  header >> magic >> stored_shard >> num_files;
  if (magic != "KSS1" || stored_shard != shard ||
      num_files != file_shapes.size()) {
    return DataLossError(
        StrCat("bad shard state header for shard ", shard, ": ", source));
  }

  ShardCampaignResult result;
  result.per_file.reserve(file_shapes.size());
  for (const Shape& shape : file_shapes) {
    result.per_file.emplace_back(shape);
  }
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'T') {
      FuzzStats& stats = result.stats;
      int stagnation = 0, budget = 0, eval_budget = 0;
      fields >> stats.iterations >> stats.evaluations >>
          stats.useful_evaluations >> stats.restarts >> stats.final_epsilon >>
          stats.elapsed_seconds >> stagnation >> budget >> eval_budget >>
          stats.retries >> stats.quarantined;
      if (fields.fail()) {
        return DataLossError("bad stats line in shard state: " + line);
      }
      stats.stopped_by_stagnation = stagnation != 0;
      stats.stopped_by_budget = budget != 0;
      stats.stopped_by_eval_budget = eval_budget != 0;
    } else if (tag == 'S') {
      int useful = 0;
      fields >> useful;
      Seed seed;
      seed.useful = useful != 0;
      double v = 0.0;
      while (fields >> v) {
        seed.value.push_back(v);
      }
      result.seeds.push_back(std::move(seed));
    } else if (tag == 'Q') {
      ParamValue point;
      double v = 0.0;
      while (fields >> v) {
        point.push_back(v);
      }
      result.stats.quarantined_points.push_back(std::move(point));
    } else if (tag == 'A') {
      ShardArtifactInfo info;
      fields >> info.lineage_bytes >> info.lineage_crc;
      if (fields.fail() || info.lineage_bytes < 0) {
        return DataLossError("bad artefact line in shard state: " + line);
      }
      if (info_out != nullptr) {
        *info_out = info;
      }
    } else if (tag == 'I') {
      size_t file = 0;
      int64_t id = -1;
      fields >> file >> id;
      if (fields.fail() || file >= file_shapes.size() || id < 0 ||
          id >= file_shapes[file].NumElements()) {
        return DataLossError("bad discovered id in shard state: " + line);
      }
      result.per_file[file].InsertLinear(id);
    } else {
      return DataLossError("unknown shard state line: " + line);
    }
  }
  return result;
}

}  // namespace kondo
