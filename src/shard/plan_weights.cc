#include "shard/plan_weights.h"

#include <algorithm>

#include "provenance/kel2_reader.h"
#include "provenance/provenance_query.h"
#include "shard/shard_campaign.h"

namespace kondo {

StatusOr<PlanWeights> WeightsFromLineageStore(
    const std::string& kel2_path, const std::vector<Shape>& file_shapes) {
  KONDO_ASSIGN_OR_RETURN(Kel2Reader reader, Kel2Reader::Open(kel2_path));
  ProvenanceQuery query(&reader);

  PlanWeights weights;
  weights.per_file.reserve(file_shapes.size());
  for (size_t f = 0; f < file_shapes.size(); ++f) {
    const int64_t elements = file_shapes[f].NumElements();
    std::vector<double> file_weights(static_cast<size_t>(elements),
                                     kColdElementWeight);
    KONDO_ASSIGN_OR_RETURN(IntervalSet ranges,
                           query.AccessedRanges(static_cast<int64_t>(f) + 1));
    for (const Interval& range : ranges.ToIntervals()) {
      // Canonical lineage byte i*8 .. i*8+8 <-> element i; count an
      // element hot when any byte of its range was touched.
      const int64_t first = range.begin / kLineageElemBytes;
      const int64_t last = (range.end + kLineageElemBytes - 1) /
                           kLineageElemBytes;
      for (int64_t i = std::max<int64_t>(first, 0);
           i < std::min(last, elements); ++i) {
        file_weights[static_cast<size_t>(i)] = kHotElementWeight;
      }
    }
    weights.per_file.push_back(std::move(file_weights));
  }
  return weights;
}

PlanWeights WeightsFromIndexSets(const std::vector<IndexSet>& per_file) {
  PlanWeights weights;
  weights.per_file.reserve(per_file.size());
  for (const IndexSet& set : per_file) {
    std::vector<double> file_weights(
        static_cast<size_t>(set.shape().NumElements()), kColdElementWeight);
    for (int64_t id : set.ToSortedLinearIds()) {
      file_weights[static_cast<size_t>(id)] = kHotElementWeight;
    }
    weights.per_file.push_back(std::move(file_weights));
  }
  return weights;
}

}  // namespace kondo
