#ifndef KONDO_SHARD_SHARD_PLAN_H_
#define KONDO_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "array/shape.h"
#include "common/statusor.h"

namespace kondo {

/// A contiguous run of one file's row-major linear ids, [begin, end) in the
/// file's own linear space. Slices are the planner's unit of assignment: a
/// shard owns one or more slices and collects exactly the index points that
/// fall inside them.
struct ShardSlice {
  int file = 0;
  int64_t begin = 0;
  int64_t end = 0;

  int64_t NumElements() const { return end - begin; }

  friend bool operator==(const ShardSlice& a, const ShardSlice& b) {
    return a.file == b.file && a.begin == b.begin && a.end == b.end;
  }
};

/// One schedulable campaign unit: an id (dense, 0-based, also the shard's
/// position in every per-shard artefact naming scheme) plus its slices.
struct Shard {
  int id = 0;
  std::vector<ShardSlice> slices;

  int64_t NumElements() const;
};

/// The planner's output: the application's file geometry (shapes plus the
/// combined-index-space offsets every campaign shares) and an ordered,
/// exact partition of the concatenated per-file linear spaces into shards.
struct ShardPlan {
  std::vector<Shape> file_shapes;
  /// offsets[f] is file f's base in the combined space;
  /// offsets[num_files] is the combined element count.
  std::vector<int64_t> offsets;
  std::vector<Shard> shards;

  int num_files() const { return static_cast<int>(file_shapes.size()); }
  int num_shards() const { return static_cast<int>(shards.size()); }
  /// The synthetic 1-D combined index space the fuzz schedule runs over.
  Shape combined_shape() const { return Shape({offsets.back()}); }
};

/// Per-element access-density weights steering the planner (empty = the
/// uniform, element-count-balanced default). `per_file[f][i]` is the
/// relative cost of file f's linear element i — typically observed access
/// density from a pilot campaign or a prior lineage store (see
/// WeightsFromLineageStore, shard/plan_weights.h). Every weight must be
/// finite and positive; exactly-uniform weights reproduce the unweighted
/// plan bit for bit (the planner detects uniformity and takes the
/// integer-exact path).
struct PlanWeights {
  std::vector<std::vector<double>> per_file;

  bool empty() const { return per_file.empty(); }

  /// Sum of file `f`'s element weights.
  double FileWeight(int f) const;

  /// True when every element of every file carries the same weight (or the
  /// weights are empty).
  bool IsUniform() const;
};

/// Partitions `file_shapes` into (at most) `shards` shards:
///  * `shards == num_files`: one file per shard (the default partition);
///  * `shards < num_files`: contiguous file groups balanced by element
///    count, every shard receiving at least one whole file;
///  * `shards > num_files`: large files are split into contiguous
///    chunk ranges — each extra split goes to the file with the most
///    elements per current split (ties to the lowest ordinal), and a file
///    is never split into more ranges than it has elements, so the plan may
///    come back with fewer shards than requested when the arrays are tiny.
///
/// The result is deterministic (a pure function of shapes and `shards`) and
/// always an exact partition: every linear id of every file belongs to
/// exactly one slice of exactly one shard. Returns kInvalidArgument for
/// `shards <= 0` or an empty/degenerate file list.
StatusOr<ShardPlan> PlanShards(const std::vector<Shape>& file_shapes,
                               int shards);

/// Access-balanced planning: like the overload above, but balances shards
/// by summed element *weight* instead of raw element count — the fix for
/// the CLIMATE-style skew where one file concentrates nearly all observed
/// accesses. Grouping (shards < files) targets equal cumulative weight per
/// group; splitting (shards > files) gives each extra split to the file
/// with the highest weight per split and places split boundaries at weight
/// quantiles (clamped so every range keeps at least one element). The
/// partition invariant (exact tiling) is unchanged — only the boundaries
/// move, so a merged campaign over a weighted plan is still bit-identical
/// to any other plan of the same files. Empty or uniform `weights` defer
/// to the unweighted planner; malformed weights (size mismatch,
/// non-finite, or <= 0 entries) are kInvalidArgument.
StatusOr<ShardPlan> PlanShards(const std::vector<Shape>& file_shapes,
                               int shards, const PlanWeights& weights);

/// Verifies the partition invariant (used by tests and by the scheduler
/// when re-validating a manifest against a freshly computed plan).
Status ValidateShardPlan(const ShardPlan& plan);

}  // namespace kondo

#endif  // KONDO_SHARD_SHARD_PLAN_H_
