#include "shard/shard_scheduler.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "exec/thread_pool.h"
#include "provenance/persist.h"
#include "shard/shard_campaign.h"

namespace kondo {
namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

}  // namespace

StatusOr<ShardCampaignResult> LoadVerifiedShard(const std::string& dir,
                                                int s,
                                                const ShardPlan& plan) {
  ShardArtifactInfo expected;
  KONDO_ASSIGN_OR_RETURN(
      ShardCampaignResult loaded,
      LoadShardState(dir + "/" + ShardStateFileName(s), s, plan.file_shapes,
                     &expected));
  if (expected.lineage_bytes >= 0) {
    KONDO_ASSIGN_OR_RETURN(
        ShardArtifactInfo actual,
        HashFileArtifact(dir + "/" + ShardLineageFileName(s)));
    if (actual.lineage_bytes != expected.lineage_bytes ||
        actual.lineage_crc != expected.lineage_crc) {
      return DataLossError(
          StrCat("shard ", s,
                 " lineage store does not match the fingerprint recorded "
                 "in its state file"));
    }
  }
  return loaded;
}

Status EnsureCampaignDirectory(const std::string& path) {
  std::string prefix;
  for (const std::string& piece : StrSplit(path, '/')) {
    prefix += piece;
    if (!prefix.empty() && !FileExists(prefix) &&
        ::mkdir(prefix.c_str(), 0755) != 0 && !FileExists(prefix)) {
      return InternalError("cannot create campaign directory: " + prefix);
    }
    prefix += '/';
  }
  return OkStatus();
}

StatusOr<ShardedRunResult> RunShardedCampaign(const MultiFileProgram& program,
                                              const KondoConfig& config,
                                              const ShardOptions& options) {
  std::vector<Shape> file_shapes;
  file_shapes.reserve(static_cast<size_t>(program.num_files()));
  for (int f = 0; f < program.num_files(); ++f) {
    file_shapes.push_back(program.file_shape(f));
  }
  KONDO_ASSIGN_OR_RETURN(
      ShardPlan plan,
      PlanShards(file_shapes, options.shards, options.plan_weights));

  const bool persistent = !options.output_dir.empty();
  ShardManifest manifest = MakeShardManifest(plan, config.rng_seed);
  std::string manifest_path;
  if (persistent) {
    KONDO_RETURN_IF_ERROR(EnsureCampaignDirectory(options.output_dir));
    manifest_path = JoinPath(options.output_dir, kShardManifestFileName);
    if (FileExists(manifest_path)) {
      KONDO_ASSIGN_OR_RETURN(manifest, LoadShardManifest(manifest_path));
      KONDO_RETURN_IF_ERROR(
          CheckManifestMatchesPlan(manifest, plan, config.rng_seed));
    } else {
      KONDO_RETURN_IF_ERROR(SaveShardManifest(manifest_path, manifest));
    }
  }

  std::vector<ShardCampaignResult> results(
      static_cast<size_t>(plan.num_shards()));
  std::vector<char> have(static_cast<size_t>(plan.num_shards()), 0);

  // Resume verification: a manifest may claim a shard is fuzzed while the
  // artefacts on disk are damaged (a crash after the state commit cannot
  // tear them — commits are atomic — but operators truncate disks and flip
  // bits). Re-verify every fuzzed shard's KSS checksum and its KEL2
  // fingerprint before trusting it; damaged shards are demoted to pending
  // and re-run instead of poisoning the merge.
  if (persistent) {
    bool demoted = false;
    for (int s = 0; s < manifest.num_shards(); ++s) {
      if (manifest.statuses[static_cast<size_t>(s)] != ShardStatus::kFuzzed) {
        continue;
      }
      StatusOr<ShardCampaignResult> loaded =
          LoadVerifiedShard(options.output_dir, s, plan);
      if (!loaded.ok()) {
        KONDO_LOG(Warning) << "shard " << s
                           << " failed resume verification, re-running: "
                           << loaded.status();
        manifest.statuses[static_cast<size_t>(s)] = ShardStatus::kPending;
        manifest.merged = false;
        demoted = true;
        continue;
      }
      results[static_cast<size_t>(s)] = std::move(*loaded);
      have[static_cast<size_t>(s)] = 1;
    }
    if (demoted) {
      KONDO_RETURN_IF_ERROR(
          SaveShardManifest(manifest_path, manifest, options.env));
    }
  }

  std::vector<int> pending;
  for (int s = 0; s < manifest.num_shards(); ++s) {
    if (manifest.statuses[static_cast<size_t>(s)] == ShardStatus::kPending) {
      pending.push_back(s);
    }
  }
  // Pacing only makes sense with a campaign directory to resume from; an
  // in-memory campaign always runs every shard.
  std::vector<int> to_run = pending;
  if (persistent && options.max_shards_this_run > 0 &&
      static_cast<size_t>(options.max_shards_this_run) < to_run.size()) {
    to_run.resize(static_cast<size_t>(options.max_shards_this_run));
  }

  const int jobs = ClampJobs(config.jobs);
  std::vector<Status> run_statuses(to_run.size(), OkStatus());

  const auto run_one = [&](size_t slot, CampaignExecutor& executor) {
    const int s = to_run[slot];
    const Shard& shard = plan.shards[static_cast<size_t>(s)];
    if (persistent) {
      const std::string lineage_path =
          JoinPath(options.output_dir, ShardLineageFileName(s));
      Kel2WriterOptions sink_options;
      sink_options.env = options.env;
      StatusOr<CampaignLineageSink> sink =
          CampaignLineageSink::Create(lineage_path, sink_options);
      if (!sink.ok()) {
        run_statuses[slot] = sink.status();
        return;
      }
      StatusOr<ShardCampaignResult> run = RunShardCampaign(
          program, plan, shard, config, executor, sink->persister());
      Status status = run.ok() ? sink->Close() : run.status();
      if (status.ok()) {
        // Fingerprint the sealed store and commit the shard's state last:
        // the KSS (with its embedded fingerprint) only exists once every
        // artefact it vouches for is durable.
        StatusOr<ShardArtifactInfo> info = HashFileArtifact(lineage_path);
        status = info.ok()
                     ? SaveShardState(JoinPath(options.output_dir,
                                               ShardStateFileName(s)),
                                      s, *run, *info, options.env)
                     : info.status();
      }
      if (!status.ok()) {
        run_statuses[slot] = status;
        return;
      }
      results[static_cast<size_t>(s)] = std::move(*run);
    } else {
      StatusOr<ShardCampaignResult> run =
          RunShardCampaign(program, plan, shard, config, executor);
      if (!run.ok()) {
        run_statuses[slot] = run.status();
        return;
      }
      results[static_cast<size_t>(s)] = std::move(*run);
    }
    have[static_cast<size_t>(s)] = 1;
  };

  if (jobs <= 1 || to_run.size() <= 1) {
    CampaignExecutor executor(jobs);
    for (size_t slot = 0; slot < to_run.size(); ++slot) {
      run_one(slot, executor);
    }
  } else {
    // One shared pool; one driver thread per running shard (capped at the
    // pool width — more drivers than workers would only queue). Drivers
    // are plain threads, NOT pool tasks: they block on their batches
    // outside the pool, so every worker stays available for debloat tests
    // from any shard.
    ThreadPool pool(jobs);
    const size_t drivers =
        std::min(to_run.size(), static_cast<size_t>(jobs));
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(drivers);
    for (size_t d = 0; d < drivers; ++d) {
      threads.emplace_back([&] {
        CampaignExecutor executor(&pool, jobs);
        for (size_t slot = next.fetch_add(1); slot < to_run.size();
             slot = next.fetch_add(1)) {
          run_one(slot, executor);
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  for (const Status& status : run_statuses) {
    KONDO_RETURN_IF_ERROR(status);
  }

  for (int s : to_run) {
    manifest.statuses[static_cast<size_t>(s)] = ShardStatus::kFuzzed;
  }
  if (persistent && !to_run.empty()) {
    KONDO_RETURN_IF_ERROR(
        SaveShardManifest(manifest_path, manifest, options.env));
  }

  ShardedRunResult out;
  out.shards_total = plan.num_shards();
  out.shards_fuzzed_now = static_cast<int>(to_run.size());
  if (!manifest.AllFuzzed()) {
    return out;  // Paced invocation: more shards remain for a later run.
  }

  // Shards fuzzed by *earlier* invocations are merged from their state
  // files; shards fuzzed just now are merged from memory.
  for (int s = 0; s < plan.num_shards(); ++s) {
    if (!have[static_cast<size_t>(s)]) {
      KONDO_ASSIGN_OR_RETURN(
          results[static_cast<size_t>(s)],
          LoadShardState(JoinPath(options.output_dir, ShardStateFileName(s)),
                         s, plan.file_shapes));
    }
  }

  CampaignExecutor merge_executor(jobs);
  KONDO_ASSIGN_OR_RETURN(
      out.merged, MergeShardCampaigns(plan, results, config, merge_executor));
  if (persistent) {
    std::vector<std::string> shard_paths;
    shard_paths.reserve(static_cast<size_t>(plan.num_shards()));
    for (int s = 0; s < plan.num_shards(); ++s) {
      shard_paths.push_back(
          JoinPath(options.output_dir, ShardLineageFileName(s)));
    }
    out.merged_lineage_path =
        JoinPath(options.output_dir, kMergedLineageFileName);
    Kel2WriterOptions merge_options;
    merge_options.env = options.env;
    KONDO_RETURN_IF_ERROR(MergeShardLineageStores(
        shard_paths, out.merged_lineage_path, merge_options));
    manifest.merged = true;
    KONDO_RETURN_IF_ERROR(
        SaveShardManifest(manifest_path, manifest, options.env));
  }
  out.complete = true;
  return out;
}

}  // namespace kondo
