#include "shard/merge_stage.h"

#include <algorithm>
#include <map>
#include <utility>

#include "audit/event_log.h"
#include "common/interval_set.h"
#include "common/strings.h"
#include "provenance/kel2_reader.h"
#include "provenance/persist.h"

namespace kondo {
namespace {

/// Returns an error naming the first deterministic FuzzStats field that
/// differs between shard 0 and shard `s`.
Status CheckStatsAgree(const FuzzStats& base, const FuzzStats& other,
                       int s) {
  const auto mismatch = [s](std::string_view field) {
    return InternalError(
        StrCat("replicated shard schedules diverged: shard ", s,
               " disagrees with shard 0 on ", field));
  };
  if (other.iterations != base.iterations) return mismatch("iterations");
  if (other.evaluations != base.evaluations) return mismatch("evaluations");
  if (other.useful_evaluations != base.useful_evaluations) {
    return mismatch("useful_evaluations");
  }
  if (other.restarts != base.restarts) return mismatch("restarts");
  if (other.final_epsilon != base.final_epsilon) {
    return mismatch("final_epsilon");
  }
  if (other.stopped_by_stagnation != base.stopped_by_stagnation ||
      other.stopped_by_budget != base.stopped_by_budget ||
      other.stopped_by_eval_budget != base.stopped_by_eval_budget) {
    return mismatch("stopping criterion");
  }
  if (other.retries != base.retries) return mismatch("retries");
  if (other.quarantined != base.quarantined) return mismatch("quarantined");
  if (other.quarantined_points != base.quarantined_points) {
    return mismatch("quarantined points");
  }
  return OkStatus();
}

}  // namespace

StatusOr<MergedCampaign> MergeShardCampaigns(
    const ShardPlan& plan,
    const std::vector<ShardCampaignResult>& shard_results,
    const KondoConfig& config, CampaignExecutor& executor) {
  if (shard_results.size() != static_cast<size_t>(plan.num_shards())) {
    return InvalidArgumentError(
        StrCat("merge expected ", plan.num_shards(), " shard results, got ",
               shard_results.size()));
  }

  MergedCampaign merged;
  merged.fuzz_stats = shard_results[0].stats;
  merged.seeds = shard_results[0].seeds;
  for (size_t s = 1; s < shard_results.size(); ++s) {
    KONDO_RETURN_IF_ERROR(CheckStatsAgree(shard_results[0].stats,
                                          shard_results[s].stats,
                                          static_cast<int>(s)));
    merged.fuzz_stats.elapsed_seconds =
        std::max(merged.fuzz_stats.elapsed_seconds,
                 shard_results[s].stats.elapsed_seconds);
  }

  const int files = plan.num_files();
  merged.per_file_discovered.reserve(static_cast<size_t>(files));
  for (int f = 0; f < files; ++f) {
    IndexSet set(plan.file_shapes[static_cast<size_t>(f)]);
    for (const ShardCampaignResult& result : shard_results) {
      set.Union(result.per_file[static_cast<size_t>(f)]);
    }
    merged.per_file_discovered.push_back(std::move(set));
  }

  // Carve the files one at a time, spending the workers *inside* each
  // file: every hull-merge round's CLOSE-pair scan fans out over the pool
  // (bit-identical merge order, see Carver::Carve), and so does each
  // file's rasterisation. Carving files serially keeps every ParallelFor
  // on the calling thread — a pool task must never start a nested one —
  // and the scan dominates carve time, so the workers stay busy even on a
  // single-file program.
  const Carver carver(config.carve);
  merged.per_file_approx.reserve(static_cast<size_t>(files));
  merged.per_file_carve_stats.reserve(static_cast<size_t>(files));
  for (int f = 0; f < files; ++f) {
    CarveStats stats;
    const CarvedSubset carved = carver.Carve(
        merged.per_file_discovered[static_cast<size_t>(f)], executor, &stats);
    merged.per_file_approx.push_back(Carver::Rasterize(carved, executor));
    merged.per_file_carve_stats.push_back(stats);
  }
  return merged;
}

Status MergeShardLineageStores(const std::vector<std::string>& shard_paths,
                               const std::string& merged_path,
                               Kel2WriterOptions options) {
  // Regroup every shard's events into per-run, per-file coalesced ranges.
  // IntervalSet::Add rejoins ranges split by chunk-slice boundaries, so the
  // grouped view — and hence the re-encoded store — is shard-count
  // invariant.
  std::map<int64_t, std::map<int64_t, IntervalSet>> runs;
  for (const std::string& path : shard_paths) {
    KONDO_ASSIGN_OR_RETURN(std::vector<Event> events,
                           ReadLineageStore(path));
    for (const Event& event : events) {
      if (!event.IsDataAccess()) {
        continue;
      }
      runs[event.id.pid][event.id.file_id].Add(event.offset,
                                               event.offset + event.size);
    }
  }

  KONDO_ASSIGN_OR_RETURN(CampaignLineageSink sink,
                         CampaignLineageSink::Create(merged_path, options));
  const AuditPersistFn persist = sink.persister();
  for (const auto& [pid, files] : runs) {
    EventLog log;
    for (const auto& [file_id, ranges] : files) {
      for (const Interval& range : ranges.ToIntervals()) {
        Event event;
        event.id = EventId{pid, file_id};
        event.type = EventType::kPread;
        event.offset = range.begin;
        event.size = range.length();
        log.Record(event);
      }
    }
    KONDO_RETURN_IF_ERROR(persist(log));
  }
  return sink.Close();
}

}  // namespace kondo
