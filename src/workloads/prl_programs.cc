#include "workloads/prl_programs.h"

#include <cmath>

namespace kondo {

Prl2DProgram::Prl2DProgram(int64_t n)
    : n_(n),
      min_extent_(n / 8),
      space_({ParamRange{static_cast<double>(n / 8),
                         static_cast<double>(n / 2 - 1), true},
              ParamRange{static_cast<double>(n / 8),
                         static_cast<double>(n / 2 - 1), true}}),
      shape_({n, n}) {}

void Prl2DProgram::Execute(const ParamValue& v, const ReadFn& read) const {
  const int64_t w = static_cast<int64_t>(std::llround(v[0]));
  const int64_t h = static_cast<int64_t>(std::llround(v[1]));
  if (w < min_extent_ || h < min_extent_ || w > n_ / 2 - 1 ||
      h > n_ / 2 - 1) {
    return;
  }
  const int64_t c = n_ / 2;
  // Horizontal edges of the ring.
  for (int64_t x = c - w; x <= c + w; ++x) {
    read(Index{x, c - h});
    read(Index{x, c + h});
  }
  // Vertical edges (corners already read above).
  for (int64_t y = c - h + 1; y <= c + h - 1; ++y) {
    read(Index{c - w, y});
    read(Index{c + w, y});
  }
}

Prl3DProgram::Prl3DProgram(int64_t n)
    // The 3-D hole (min extent n/4 vs n/8 in 2-D) has a larger relative
    // volume, reproducing the paper's observation that "the hole enlarges
    // in PRL3D" and costs more precision than in 2-D.
    : n_(n),
      min_extent_(n / 4),
      space_({ParamRange{static_cast<double>(n / 4),
                         static_cast<double>(n / 2 - 1), true},
              ParamRange{static_cast<double>(n / 4),
                         static_cast<double>(n / 2 - 1), true},
              ParamRange{static_cast<double>(n / 4),
                         static_cast<double>(n / 2 - 1), true}}),
      shape_({n, n, n}) {}

void Prl3DProgram::Execute(const ParamValue& v, const ReadFn& read) const {
  const int64_t w = static_cast<int64_t>(std::llround(v[0]));
  const int64_t h = static_cast<int64_t>(std::llround(v[1]));
  const int64_t d = static_cast<int64_t>(std::llround(v[2]));
  const int64_t max_extent = n_ / 2 - 1;
  if (w < min_extent_ || h < min_extent_ || d < min_extent_ ||
      w > max_extent || h > max_extent || d > max_extent) {
    return;
  }
  const int64_t c = n_ / 2;
  // z faces.
  for (int64_t x = c - w; x <= c + w; ++x) {
    for (int64_t y = c - h; y <= c + h; ++y) {
      read(Index{x, y, c - d});
      read(Index{x, y, c + d});
    }
  }
  // y faces (excluding rows already covered by the z faces).
  for (int64_t x = c - w; x <= c + w; ++x) {
    for (int64_t z = c - d + 1; z <= c + d - 1; ++z) {
      read(Index{x, c - h, z});
      read(Index{x, c + h, z});
    }
  }
  // x faces (excluding both).
  for (int64_t y = c - h + 1; y <= c + h - 1; ++y) {
    for (int64_t z = c - d + 1; z <= c + d - 1; ++z) {
      read(Index{c - w, y, z});
      read(Index{c + w, y, z});
    }
  }
}

const IndexSet& Prl3DProgram::GroundTruth() const {
  MutexLock lock(ground_truth_mu_);
  if (!ground_truth_ready_) {
    // A point at absolute offsets (a, b, e) from the centre is read by some
    // run iff it lies inside the largest box (all offsets <= max extent)
    // and on the surface of some admissible box — i.e. at least one offset
    // reaches the minimum extent.
    IndexSet gt(shape_);
    const int64_t c = n_ / 2;
    const int64_t max_extent = n_ / 2 - 1;
    for (int64_t x = c - max_extent; x <= c + max_extent; ++x) {
      for (int64_t y = c - max_extent; y <= c + max_extent; ++y) {
        for (int64_t z = c - max_extent; z <= c + max_extent; ++z) {
          const int64_t a = std::llabs(x - c);
          const int64_t b = std::llabs(y - c);
          const int64_t e = std::llabs(z - c);
          if (a >= min_extent_ || b >= min_extent_ || e >= min_extent_) {
            gt.Insert(Index{x, y, z});
          }
        }
      }
    }
    ground_truth_cache_ = std::move(gt);
    ground_truth_ready_ = true;
  }
  return ground_truth_cache_;
}

}  // namespace kondo
