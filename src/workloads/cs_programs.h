#ifndef KONDO_WORKLOADS_CS_PROGRAMS_H_
#define KONDO_WORKLOADS_CS_PROGRAMS_H_

#include <string>

#include "workloads/program.h"
#include "workloads/stencil.h"

namespace kondo {

/// The cross-stencil program family. `kBase` is the Listing-1 program: a
/// walk from the origin with per-run steps (stepX, stepY), reading the 2x2
/// cross at each position, guarded by stepX <= stepY — its index subset over
/// all runs is the lower-triangular region of Fig. 1. The synthetic variants
/// modify the parameter constraint (Section V-A, Table II column 3); their
/// exact constraints are reconstructions from the paper's prose (CS1/CS5
/// have "distant sparse regions", CS3 has the narrowest useful window and
/// the lowest recall, CS2 is a diagonal band):
///
///  * kCs1 — disjoint second triangle, sparsely read (every 4th step).
///  * kCs2 — |stepX - stepY| <= 4 band walk.
///  * kCs3 — useful only when stepY >= 3N/4: a thin far stripe.
///  * kCs5 — dense small-step cone plus a distant sparse 4-lattice corner.
enum class CsVariant { kBase, kCs1, kCs2, kCs3, kCs5 };

/// Builds the Table II name for a variant ("CS", "CS1", ...).
std::string CsVariantName(CsVariant variant);

class CsProgram final : public Program {
 public:
  /// `n` is the square array extent (paper default 128; Fig. 11a scales it
  /// to 2048). Θ is (stepX, stepY) ∈ [0, n-1]^2, "the maximum dataset size"
  /// per Section V-D4.
  explicit CsProgram(CsVariant variant, int64_t n = 128);

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  const ParamSpace& param_space() const override { return space_; }
  const Shape& data_shape() const override { return shape_; }

  void Execute(const ParamValue& v, const ReadFn& read) const override;

  /// CS3 carries an analytic ground truth (validated against enumeration in
  /// tests) so the Fig. 11a bench can scale n to 2048 where enumerating
  /// |Θ| = n^2 walks is infeasible; other variants use the base-class
  /// enumeration.
  const IndexSet& GroundTruth() const override;

 private:
  /// Cross-stencil walk from (i0, j0) with steps (sx, sy); when
  /// `read_modulo` > 1 only every read_modulo-th position is read.
  void Walk(int64_t i0, int64_t j0, int64_t sx, int64_t sy, int read_modulo,
            const ReadFn& read) const;

  CsVariant variant_;
  int64_t n_;
  std::string name_;
  std::string description_;
  ParamSpace space_;
  Shape shape_;
  Stencil cross_;
};

}  // namespace kondo

#endif  // KONDO_WORKLOADS_CS_PROGRAMS_H_
