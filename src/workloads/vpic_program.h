#ifndef KONDO_WORKLOADS_VPIC_PROGRAM_H_
#define KONDO_WORKLOADS_VPIC_PROGRAM_H_

#include <vector>

#include "workloads/program.h"

namespace kondo {

/// VPIC-style threshold subsetting (paper §I-A, the fifth application of
/// Tang et al.'s study): the application "subsets the 3D space where an
/// attribute value is greater than a given threshold", and "can also yield
/// data subsetting savings if an index or sorted-map has been built with
/// the attribute value as the key".
///
/// This program models exactly that: a fixed synthetic particle-energy
/// field over the mesh, a prebuilt sorted index keyed by energy, and runs
/// parameterised by (threshold, slab) that read every cell of the chosen
/// z-slab whose energy is >= threshold — via the index, so a run touches
/// only matching cells. The energy field is a deterministic function of
/// the cell coordinates (a radial hot spot), making `I_v` a function of
/// `v` alone, as Section III assumes.
class VpicProgram final : public Program {
 public:
  /// `n` is the mesh extent per dimension (default 32³);
  /// Θ = (threshold ∈ [t_min, t_max], slab z ∈ [0, n-1]).
  explicit VpicProgram(int64_t n = 32);

  std::string_view name() const override { return "VPIC"; }
  std::string_view description() const override {
    return "threshold subsetting over a sorted energy index (z-slab runs)";
  }
  const ParamSpace& param_space() const override { return space_; }
  const Shape& data_shape() const override { return shape_; }
  void Execute(const ParamValue& v, const ReadFn& read) const override;

  /// The synthetic energy at `index` in [0, 100].
  double EnergyAt(const Index& index) const;

  /// Analytic ground truth: every cell whose energy clears the minimum
  /// supported threshold (validated against enumeration in tests).
  const IndexSet& GroundTruth() const override;

  int64_t min_threshold() const { return min_threshold_; }

 private:
  int64_t n_;
  int64_t min_threshold_;
  ParamSpace space_;
  Shape shape_;
  /// Prebuilt index: per z-slab, cells sorted by descending energy — the
  /// "sorted-map with the attribute value as the key".
  std::vector<std::vector<Index>> slab_index_;
};

}  // namespace kondo

#endif  // KONDO_WORKLOADS_VPIC_PROGRAM_H_
