#ifndef KONDO_WORKLOADS_PRL_PROGRAMS_H_
#define KONDO_WORKLOADS_PRL_PROGRAMS_H_

#include <string>

#include "workloads/program.h"

namespace kondo {

/// PRL — the "periphery ring" micro-benchmark built on H5bench's
/// rectangle-with-a-hole stencil. A run reads the boundary ring of the
/// axis-aligned rectangle centred in the array whose half-extents are the
/// parameters; the union over Θ is a solid frame with a central hole (the
/// rectangle-with-hole region of Table I). The convex hull over the frame
/// necessarily covers the hole, which is why the paper reports the PRL
/// precision dip — larger in 3-D where the hole's relative volume grows.
class Prl2DProgram final : public Program {
 public:
  /// `n` is the square array extent; Θ is (w, h) ∈ [n/16, n/2 - 1]^2
  /// (half-extents of the ring read by a run).
  explicit Prl2DProgram(int64_t n = 128);

  std::string_view name() const override { return "PRL"; }
  std::string_view description() const override {
    return "2-D periphery ring; union is a frame with a central hole";
  }
  const ParamSpace& param_space() const override { return space_; }
  const Shape& data_shape() const override { return shape_; }
  void Execute(const ParamValue& v, const ReadFn& read) const override;

  /// Minimum ring half-extent (the hole's half-size).
  int64_t min_extent() const { return min_extent_; }

 private:
  int64_t n_;
  int64_t min_extent_;
  ParamSpace space_;
  Shape shape_;
};

/// 3-D PRL: a run reads the rectangular shell (all faces) of the box with
/// half-extents (w, h, d); three parameters (Table II column 5).
class Prl3DProgram final : public Program {
 public:
  explicit Prl3DProgram(int64_t n = 64);

  std::string_view name() const override { return "PRL3D"; }
  std::string_view description() const override {
    return "3-D periphery shell; union is a thick shell with a cubic hole";
  }
  const ParamSpace& param_space() const override { return space_; }
  const Shape& data_shape() const override { return shape_; }
  void Execute(const ParamValue& v, const ReadFn& read) const override;

  /// Analytic ground truth (enumerating |Θ| shell reads is quadratic in n;
  /// validated against enumeration on small n in tests).
  const IndexSet& GroundTruth() const override;

  int64_t min_extent() const { return min_extent_; }

 private:
  int64_t n_;
  int64_t min_extent_;
  ParamSpace space_;
  Shape shape_;
};

}  // namespace kondo

#endif  // KONDO_WORKLOADS_PRL_PROGRAMS_H_
