#ifndef KONDO_WORKLOADS_PROGRAM_H_
#define KONDO_WORKLOADS_PROGRAM_H_

#include <functional>
#include <string>
#include <string_view>

#include "array/index_set.h"
#include "array/shape.h"
#include "audit/traced_file.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "fuzz/param_space.h"

namespace kondo {

/// Element-read callback handed to a program run.
using ReadFn = std::function<void(const Index&)>;

/// A containerized application under debloating analysis: an executable `X`
/// with `m` input parameters over a parameter space Θ, reading a data array
/// of a fixed shape (Section II/III).
///
/// Two execution modes mirror the paper's methodology (Section V-C):
///  * `Execute(v, read)` drives the access pattern through a callback —
///    the "replace each HDF5 read with a loop that prints offsets"
///    transformation used to measure fuzzing and carving in isolation;
///  * `ExecuteOnFile(v, file)` issues real positioned reads through the
///    audited interposition shim, used for the I/O-overhead experiment.
class Program {
 public:
  virtual ~Program() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual const ParamSpace& param_space() const = 0;
  virtual const Shape& data_shape() const = 0;

  int rank() const { return data_shape().rank(); }

  /// Runs the program for parameter value `v`, reporting every element
  /// access through `read`. Accesses outside the data shape are the
  /// program's bugs, not the framework's: implementations clip to bounds.
  virtual void Execute(const ParamValue& v, const ReadFn& read) const = 0;

  /// The index subset `I_v` of one run.
  IndexSet AccessSet(const ParamValue& v) const;

  /// Runs against a real data file through the (optionally audited) shim.
  Status ExecuteOnFile(const ParamValue& v, TracedFile& file) const;

  /// The ground truth `I_Θ = ∪_{v∈Θ} I_v`. The base implementation
  /// enumerates every integer valuation of Θ (requires |Θ| <=
  /// `max_enumerated_valuations`); programs with huge Θ override this with
  /// an analytic region fill. Results are cached; the lazy fill is guarded
  /// so one program instance can be shared across executor workers
  /// (overrides doing their own lazy caching should guard with
  /// `ground_truth_mu_` likewise).
  virtual const IndexSet& GroundTruth() const;

  /// Enumerates I_Θ exhaustively (the base implementation of GroundTruth).
  /// Aborts when |Θ| exceeds the guard or any parameter is real-valued.
  /// Public so tests can validate analytic overrides against enumeration on
  /// shrunken instances.
  IndexSet GroundTruthByEnumeration(double max_enumerated_valuations) const;

 protected:
  mutable Mutex ground_truth_mu_;
  mutable IndexSet ground_truth_cache_ KONDO_GUARDED_BY(ground_truth_mu_);
  mutable bool ground_truth_ready_ KONDO_GUARDED_BY(ground_truth_mu_) = false;
};

}  // namespace kondo

#endif  // KONDO_WORKLOADS_PROGRAM_H_
