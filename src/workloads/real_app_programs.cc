#include "workloads/real_app_programs.h"

#include <cmath>

namespace kondo {

ArdProgram::ArdProgram(int64_t scale)
    : w_max_(200 / scale),
      h_max_(500 / scale),
      t_max_(512),
      space_({ParamRange{static_cast<double>(50 / scale),
                         static_cast<double>(w_max_), true},
              ParamRange{static_cast<double>(100 / scale),
                         static_cast<double>(h_max_), true},
              ParamRange{0.0, static_cast<double>(t_max_ - 1), true}}),
      shape_({1536 / scale, 2304 / scale, t_max_}) {}

void ArdProgram::Execute(const ParamValue& v, const ReadFn& read) const {
  const int64_t w = static_cast<int64_t>(std::llround(v[0]));
  const int64_t h = static_cast<int64_t>(std::llround(v[1]));
  const int64_t t = static_cast<int64_t>(std::llround(v[2]));
  if (w < space_.range(0).lo || w > w_max_ || h < space_.range(1).lo ||
      h > h_max_ || t < 0 || t >= t_max_) {
    return;
  }
  for (int64_t x = 0; x < w; ++x) {
    for (int64_t y = 0; y < h; ++y) {
      read(Index{x, y, t});
    }
  }
}

const IndexSet& ArdProgram::GroundTruth() const {
  MutexLock lock(ground_truth_mu_);
  if (!ground_truth_ready_) {
    IndexSet gt(shape_);
    for (int64_t x = 0; x < w_max_; ++x) {
      for (int64_t y = 0; y < h_max_; ++y) {
        for (int64_t t = 0; t < t_max_; ++t) {
          gt.Insert(Index{x, y, t});
        }
      }
    }
    ground_truth_cache_ = std::move(gt);
    ground_truth_ready_ = true;
  }
  return ground_truth_cache_;
}

MsiProgram::MsiProgram(int64_t nx, int64_t ny, int64_t nz)
    : nx_(nx),
      ny_(ny),
      nz_(nz),
      // The paper's spectral window is 10000..15000 of 133092 (3.76%);
      // scaled proportionally into [z_lo, z_hi].
      z_lo_(nz * 10000 / 133092),
      z_hi_(nz * 15000 / 133092),
      space_({ParamRange{0.0, static_cast<double>(nx - 1), true},
              ParamRange{0.0, static_cast<double>(ny - 1), true},
              ParamRange{static_cast<double>(z_lo_),
                         static_cast<double>(z_hi_), true}}),
      shape_({nx, ny, nz}) {}

void MsiProgram::Execute(const ParamValue& v, const ReadFn& read) const {
  const int64_t x = static_cast<int64_t>(std::llround(v[0]));
  const int64_t y = static_cast<int64_t>(std::llround(v[1]));
  const int64_t z = static_cast<int64_t>(std::llround(v[2]));
  if (x < 0 || x >= nx_ || y < 0 || y >= ny_ || z < z_lo_ || z > z_hi_) {
    return;
  }
  for (int64_t zz = z_lo_; zz <= z; ++zz) {
    read(Index{x, y, zz});
  }
}

const IndexSet& MsiProgram::GroundTruth() const {
  MutexLock lock(ground_truth_mu_);
  if (!ground_truth_ready_) {
    IndexSet gt(shape_);
    for (int64_t x = 0; x < nx_; ++x) {
      for (int64_t y = 0; y < ny_; ++y) {
        for (int64_t z = z_lo_; z <= z_hi_; ++z) {
          gt.Insert(Index{x, y, z});
        }
      }
    }
    ground_truth_cache_ = std::move(gt);
    ground_truth_ready_ = true;
  }
  return ground_truth_cache_;
}

}  // namespace kondo
