#ifndef KONDO_WORKLOADS_MULTI_FILE_PROGRAM_H_
#define KONDO_WORKLOADS_MULTI_FILE_PROGRAM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "array/index_set.h"
#include "array/shape.h"
#include "fuzz/param_space.h"
#include "workloads/program.h"

namespace kondo {

/// Element-read callback for multi-file execution: (file ordinal, index).
using MultiReadFn = std::function<void(int file, const Index&)>;

/// Per-file index subsets of one run or campaign.
using MultiIndexSets = std::vector<IndexSet>;

/// An application reading several self-describing data arrays — the general
/// setting of the paper (footnote 1 and Section VI): "an application may use
/// multiple data files, each self-describing, and represented by multiple
/// data arrays. Our approach generalizes to this real setting."
///
/// Each file has a name and shape; runs access any subset of the files.
/// Kondo's multi-file pipeline fuzzes once and carves each file's observed
/// index points independently.
class MultiFileProgram {
 public:
  virtual ~MultiFileProgram() = default;

  virtual std::string_view name() const = 0;
  virtual const ParamSpace& param_space() const = 0;

  /// Number of data files the application declares (its D_1 .. D_k).
  virtual int num_files() const = 0;
  virtual std::string_view file_name(int file) const = 0;
  virtual const Shape& file_shape(int file) const = 0;

  /// Runs the program for `v`, reporting every access as (file, index).
  virtual void Execute(const ParamValue& v,
                       const MultiReadFn& read) const = 0;

  /// The per-file index subsets `I_v` of one run.
  MultiIndexSets AccessSets(const ParamValue& v) const;

  /// Per-file ground truths `I_Θ` by enumeration over an integer Θ.
  MultiIndexSets GroundTruths(double max_enumerated_valuations = 2e6) const;
};

/// A concrete two-file scientific workload: a storm-tracking application
/// reading (a) a 2-D terrain elevation grid along the storm track and (b) a
/// 3-D atmospheric mesh column above each track point. Mirrors Fig. 2's
/// container with data dependencies D1, D2 of which a run touches both —
/// but only small portions of each.
///
/// Parameters: (x0, y0) the storm entry point. The track walks diagonally
/// from (x0, y0), reading terrain cells under the track and the full
/// pressure column of the (coarser) atmosphere mesh above every other
/// track cell. The guard x0 <= y0 mirrors Listing 1's constraint.
class StormTrackProgram final : public MultiFileProgram {
 public:
  /// `n` is the terrain extent (atmosphere is n/2 x n/2 x levels).
  explicit StormTrackProgram(int64_t n = 64, int64_t levels = 16);

  std::string_view name() const override { return "STORM"; }
  const ParamSpace& param_space() const override { return space_; }
  int num_files() const override { return 2; }
  std::string_view file_name(int file) const override {
    return file == 0 ? "terrain" : "atmosphere";
  }
  const Shape& file_shape(int file) const override {
    return file == 0 ? terrain_shape_ : atmosphere_shape_;
  }
  void Execute(const ParamValue& v, const MultiReadFn& read) const override;

 private:
  int64_t n_;
  int64_t levels_;
  ParamSpace space_;
  Shape terrain_shape_;
  Shape atmosphere_shape_;
};

/// A four-file climate-analysis workload for per-file sharding: a regional
/// study reading (a) a 2-D sea-surface-temperature grid, (b) a 3-D wind
/// mesh, (c) a 2-D precipitation grid, and (d) a 1-D coastline profile.
/// With four files of distinct ranks and extents, a `--shards 4` campaign
/// assigns exactly one file per shard — the natural partition the planner
/// defaults to.
///
/// Parameters: (lat0, lon0) the study region's anchor cell, integers in
/// [0, n-1] with the Listing-1-style guard lat0 <= lon0. The study scans an
/// SST block from the anchor, samples wind columns above every other block
/// cell on the coarser mesh, follows precipitation along the block
/// diagonal, and reads the coastline segment at the anchor longitude.
class ClimateRegionProgram final : public MultiFileProgram {
 public:
  /// `n` is the grid extent (wind mesh is n/2 x n/2 x levels).
  explicit ClimateRegionProgram(int64_t n = 64, int64_t levels = 12);

  std::string_view name() const override { return "CLIMATE"; }
  const ParamSpace& param_space() const override { return space_; }
  int num_files() const override { return 4; }
  std::string_view file_name(int file) const override;
  const Shape& file_shape(int file) const override;
  void Execute(const ParamValue& v, const MultiReadFn& read) const override;

 private:
  int64_t n_;
  int64_t levels_;
  ParamSpace space_;
  Shape sst_shape_;
  Shape wind_shape_;
  Shape precip_shape_;
  Shape coast_shape_;
};

/// Presents a single-file `Program` as a one-file MultiFileProgram so the
/// sharding pipeline (whose chunk-range splitter partitions large single
/// files) applies uniformly — `--shards` works on every registered program,
/// not just the multi-file workloads.
class SingleFileProgramAdapter final : public MultiFileProgram {
 public:
  explicit SingleFileProgramAdapter(std::unique_ptr<Program> program);

  std::string_view name() const override { return program_->name(); }
  const ParamSpace& param_space() const override {
    return program_->param_space();
  }
  int num_files() const override { return 1; }
  std::string_view file_name(int /*file*/) const override { return "data"; }
  const Shape& file_shape(int /*file*/) const override {
    return program_->data_shape();
  }
  void Execute(const ParamValue& v, const MultiReadFn& read) const override;

  const Program& program() const { return *program_; }

 private:
  std::unique_ptr<Program> program_;
};

}  // namespace kondo

#endif  // KONDO_WORKLOADS_MULTI_FILE_PROGRAM_H_
