#include "workloads/demo_program.h"

#include <cmath>

namespace kondo {

DemoMultiRegionProgram::DemoMultiRegionProgram(int64_t n)
    : n_(n),
      space_({ParamRange{0, static_cast<double>(n - 1), true},
              ParamRange{0, static_cast<double>(n - 1), true}}),
      shape_({n, n}),
      cross_(CrossStencil2D()) {}

bool DemoMultiRegionProgram::IsUseful(double p, double q) const {
  const double s = static_cast<double>(n_) / 128.0;  // Region scale factor.
  if (p <= q - 16.0 * s) {
    return true;  // Large band region.
  }
  const double dx = p - 104.0 * s;
  const double dy = q - 24.0 * s;
  if (std::sqrt(dx * dx + dy * dy) <= 10.0 * s) {
    return true;  // Bottom-right island.
  }
  if (p >= 88.0 * s && p <= 104.0 * s && q >= 56.0 * s && q <= 72.0 * s) {
    return true;  // Mid-right island (disjoint from the band).
  }
  return false;
}

void DemoMultiRegionProgram::Execute(const ParamValue& v,
                                     const ReadFn& read) const {
  const int64_t p = static_cast<int64_t>(std::llround(v[0]));
  const int64_t q = static_cast<int64_t>(std::llround(v[1]));
  if (p < 0 || q < 0 || p > n_ - 1 || q > n_ - 1 ||
      !IsUseful(static_cast<double>(p), static_cast<double>(q))) {
    return;
  }
  cross_.Apply(shape_, Index{p, q}, read);
}

}  // namespace kondo
