#include "workloads/vpic_program.h"

#include <algorithm>
#include <cmath>

namespace kondo {

VpicProgram::VpicProgram(int64_t n)
    : n_(n),
      min_threshold_(60),
      space_({ParamRange{static_cast<double>(min_threshold_), 100.0, true},
              ParamRange{0.0, static_cast<double>(n - 1), true}}),
      shape_({n, n, n}) {
  // Prebuild the per-slab sorted index (descending energy), as the data
  // producer would.
  slab_index_.resize(static_cast<size_t>(n));
  for (int64_t z = 0; z < n_; ++z) {
    std::vector<Index>& slab = slab_index_[static_cast<size_t>(z)];
    for (int64_t x = 0; x < n_; ++x) {
      for (int64_t y = 0; y < n_; ++y) {
        slab.push_back(Index{x, y, z});
      }
    }
    std::sort(slab.begin(), slab.end(),
              [this](const Index& a, const Index& b) {
                return EnergyAt(a) > EnergyAt(b);
              });
  }
}

double VpicProgram::EnergyAt(const Index& index) const {
  // A radial hot spot centred at (n/3, n/3, n/2): energy decays linearly
  // with euclidean distance, clamped to [0, 100]. Deterministic in the
  // coordinates, so I_v depends only on v (Section III's assumption).
  const double cx = static_cast<double>(n_) / 3.0;
  const double cy = static_cast<double>(n_) / 3.0;
  const double cz = static_cast<double>(n_) / 2.0;
  const double dx = static_cast<double>(index[0]) - cx;
  const double dy = static_cast<double>(index[1]) - cy;
  const double dz = static_cast<double>(index[2]) - cz;
  const double distance = std::sqrt(dx * dx + dy * dy + dz * dz);
  // Full energy at the core, zero at ~2/3 of the mesh away.
  const double radius = 2.0 * static_cast<double>(n_) / 3.0;
  return std::clamp(100.0 * (1.0 - distance / radius), 0.0, 100.0);
}

void VpicProgram::Execute(const ParamValue& v, const ReadFn& read) const {
  const int64_t threshold = static_cast<int64_t>(std::llround(v[0]));
  const int64_t z = static_cast<int64_t>(std::llround(v[1]));
  if (threshold < min_threshold_ || threshold > 100 || z < 0 || z >= n_) {
    return;
  }
  // Walk the sorted index until energy drops below the threshold — the
  // subsetting read pattern an attribute index enables.
  for (const Index& index : slab_index_[static_cast<size_t>(z)]) {
    if (EnergyAt(index) < static_cast<double>(threshold)) {
      break;
    }
    read(index);
  }
}

const IndexSet& VpicProgram::GroundTruth() const {
  MutexLock lock(ground_truth_mu_);
  if (!ground_truth_ready_) {
    // The loosest supported run per slab reads everything with energy >=
    // min_threshold; tighter thresholds read subsets of that.
    IndexSet gt(shape_);
    shape_.ForEachIndex([this, &gt](const Index& index) {
      if (EnergyAt(index) >= static_cast<double>(min_threshold_)) {
        gt.Insert(index);
      }
    });
    ground_truth_cache_ = std::move(gt);
    ground_truth_ready_ = true;
  }
  return ground_truth_cache_;
}

}  // namespace kondo
