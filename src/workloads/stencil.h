#ifndef KONDO_WORKLOADS_STENCIL_H_
#define KONDO_WORKLOADS_STENCIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "array/index.h"
#include "array/shape.h"

namespace kondo {

/// A stencil: a geometric neighbourhood of relative offsets applied at a
/// base index (H5bench's data abstraction, Section V-A / Table I). The
/// benchmark suite uses two stencil families — solid rectangles and
/// rectangles with a hole — plus the cross used by the Listing-1 program.
struct Stencil {
  std::string name;
  std::vector<Index> offsets;

  /// Applies the stencil at `base`, invoking `fn` for each in-bounds index.
  template <typename Fn>
  void Apply(const Shape& shape, const Index& base, Fn&& fn) const {
    for (const Index& offset : offsets) {
      Index target = base;
      for (int d = 0; d < base.rank(); ++d) {
        target[d] = base[d] + offset[d];
      }
      if (shape.Contains(target)) {
        fn(target);
      }
    }
  }
};

/// The 2x2 cross stencil of the Listing-1 program: (0,0) (1,0) (0,1) (1,1).
Stencil CrossStencil2D();

/// Solid w x h rectangle anchored at the base index.
Stencil SolidRectStencil(int64_t w, int64_t h);

/// Solid w x h x d box anchored at the base index (3-D extension).
Stencil SolidBoxStencil(int64_t w, int64_t h, int64_t d);

/// w x h rectangle with a centred hole of `hole` cells per side removed —
/// H5bench's "rectangular shape with a hole".
Stencil HoledRectStencil(int64_t w, int64_t h, int64_t hole);

/// ASCII rendering of a 2-D stencil (for the Table I bench): '#' marks
/// member offsets, '.' holes, over the stencil's bounding box.
std::string RenderStencil2D(const Stencil& stencil);

}  // namespace kondo

#endif  // KONDO_WORKLOADS_STENCIL_H_
