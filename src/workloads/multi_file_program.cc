#include "workloads/multi_file_program.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace kondo {

MultiIndexSets MultiFileProgram::AccessSets(const ParamValue& v) const {
  MultiIndexSets sets;
  sets.reserve(static_cast<size_t>(num_files()));
  for (int f = 0; f < num_files(); ++f) {
    sets.emplace_back(file_shape(f));
  }
  Execute(v, [&sets](int file, const Index& index) {
    sets[static_cast<size_t>(file)].Insert(index);
  });
  return sets;
}

MultiIndexSets MultiFileProgram::GroundTruths(
    double max_enumerated_valuations) const {
  const ParamSpace& space = param_space();
  const double valuations = space.NumValuations();
  KONDO_CHECK(std::isfinite(valuations) &&
              valuations <= max_enumerated_valuations)
      << "Θ too large to enumerate for " << name();

  MultiIndexSets truths;
  truths.reserve(static_cast<size_t>(num_files()));
  for (int f = 0; f < num_files(); ++f) {
    truths.emplace_back(file_shape(f));
  }

  const int m = space.num_params();
  std::vector<int64_t> lo(static_cast<size_t>(m)), hi(static_cast<size_t>(m)),
      cur(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    lo[static_cast<size_t>(i)] =
        static_cast<int64_t>(std::ceil(space.range(i).lo));
    hi[static_cast<size_t>(i)] =
        static_cast<int64_t>(std::floor(space.range(i).hi));
    cur[static_cast<size_t>(i)] = lo[static_cast<size_t>(i)];
  }
  ParamValue v(static_cast<size_t>(m));
  while (true) {
    for (int i = 0; i < m; ++i) {
      v[static_cast<size_t>(i)] =
          static_cast<double>(cur[static_cast<size_t>(i)]);
    }
    Execute(v, [&truths](int file, const Index& index) {
      truths[static_cast<size_t>(file)].Insert(index);
    });
    int d = m - 1;
    while (d >= 0 &&
           ++cur[static_cast<size_t>(d)] > hi[static_cast<size_t>(d)]) {
      cur[static_cast<size_t>(d)] = lo[static_cast<size_t>(d)];
      --d;
    }
    if (d < 0) {
      break;
    }
  }
  return truths;
}

StormTrackProgram::StormTrackProgram(int64_t n, int64_t levels)
    : n_(n),
      levels_(levels),
      space_({ParamRange{0, static_cast<double>(n - 1), true},
              ParamRange{0, static_cast<double>(n - 1), true}}),
      terrain_shape_({n, n}),
      atmosphere_shape_({n / 2, n / 2, levels}) {}

void StormTrackProgram::Execute(const ParamValue& v,
                                const MultiReadFn& read) const {
  const int64_t x0 = static_cast<int64_t>(std::llround(v[0]));
  const int64_t y0 = static_cast<int64_t>(std::llround(v[1]));
  if (x0 < 0 || y0 < 0 || x0 > n_ - 1 || y0 > n_ - 1 || x0 > y0) {
    return;  // Unsupported entry point (cf. Listing 1's guard).
  }
  int64_t x = x0;
  int64_t y = y0;
  int64_t step = 0;
  while (x < n_ && y < n_) {
    // Terrain under the track cell (file 0: the 2-D grid).
    read(0, Index{x, y});
    // Every other step, the full pressure column of the coarser
    // atmosphere mesh above the track (file 1: the 3-D mesh).
    if (step % 2 == 0) {
      const Index base{x / 2, y / 2};
      if (base[0] < atmosphere_shape_.dim(0) &&
          base[1] < atmosphere_shape_.dim(1)) {
        for (int64_t level = 0; level < levels_; ++level) {
          read(1, Index{base[0], base[1], level});
        }
      }
    }
    ++x;
    ++y;
    ++step;
  }
}

ClimateRegionProgram::ClimateRegionProgram(int64_t n, int64_t levels)
    : n_(n),
      levels_(levels),
      space_({ParamRange{0, static_cast<double>(n - 1), true},
              ParamRange{0, static_cast<double>(n - 1), true}}),
      sst_shape_({n, n}),
      wind_shape_({n / 2, n / 2, levels}),
      precip_shape_({n, n}),
      coast_shape_({n}) {}

std::string_view ClimateRegionProgram::file_name(int file) const {
  switch (file) {
    case 0:
      return "sst";
    case 1:
      return "wind";
    case 2:
      return "precip";
    default:
      return "coast";
  }
}

const Shape& ClimateRegionProgram::file_shape(int file) const {
  switch (file) {
    case 0:
      return sst_shape_;
    case 1:
      return wind_shape_;
    case 2:
      return precip_shape_;
    default:
      return coast_shape_;
  }
}

void ClimateRegionProgram::Execute(const ParamValue& v,
                                   const MultiReadFn& read) const {
  const int64_t lat0 = static_cast<int64_t>(std::llround(v[0]));
  const int64_t lon0 = static_cast<int64_t>(std::llround(v[1]));
  if (lat0 < 0 || lon0 < 0 || lat0 > n_ - 1 || lon0 > n_ - 1 || lat0 > lon0) {
    return;  // Unsupported anchor (cf. Listing 1's guard).
  }
  const int64_t block = std::min<int64_t>(8, n_);
  const int64_t lat_end = std::min(n_, lat0 + block);
  const int64_t lon_end = std::min(n_, lon0 + block);

  for (int64_t lat = lat0; lat < lat_end; ++lat) {
    for (int64_t lon = lon0; lon < lon_end; ++lon) {
      // SST under every study cell (file 0: the 2-D grid).
      read(0, Index{lat, lon});
      // Wind column above every other cell on the coarser mesh (file 1).
      if ((lat + lon) % 2 == 0) {
        const Index base{lat / 2, lon / 2};
        if (base[0] < wind_shape_.dim(0) && base[1] < wind_shape_.dim(1)) {
          for (int64_t level = 0; level < levels_; ++level) {
            read(1, Index{base[0], base[1], level});
          }
        }
      }
    }
  }

  // Precipitation along the block diagonal (file 2: the 2-D grid).
  for (int64_t step = 0; lat0 + step < lat_end && lon0 + step < lon_end;
       ++step) {
    read(2, Index{lat0 + step, lon0 + step});
  }

  // Coastline segment at the anchor longitude (file 3: the 1-D profile).
  const int64_t coast_end = std::min(n_, lon0 + 2 * block);
  for (int64_t lon = lon0; lon < coast_end; ++lon) {
    read(3, Index{lon});
  }
}

SingleFileProgramAdapter::SingleFileProgramAdapter(
    std::unique_ptr<Program> program)
    : program_(std::move(program)) {
  KONDO_CHECK(program_ != nullptr) << "adapter requires a program";
}

void SingleFileProgramAdapter::Execute(const ParamValue& v,
                                       const MultiReadFn& read) const {
  program_->Execute(v, [&read](const Index& index) { read(0, index); });
}

}  // namespace kondo
