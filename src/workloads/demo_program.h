#ifndef KONDO_WORKLOADS_DEMO_PROGRAM_H_
#define KONDO_WORKLOADS_DEMO_PROGRAM_H_

#include "workloads/program.h"
#include "workloads/stencil.h"

namespace kondo {

/// The multi-region contrast program behind Fig. 4: a cross-stencil variant
/// whose *useful* parameter region consists of one large region plus two
/// small disjoint islands (top-left and bottom-right of Θ). The plain
/// exploit-and-explore schedule localises around the big region and misses
/// the islands; boundary-based EE's random restarts and boundary homing find
/// them and densify samples along the region boundaries.
///
/// Useful v = (p, q) regions (n = 128):
///   * the band  p <= q - 16            (large region),
///   * the disk  |(p,q) - (104, 24)| <= 10   (bottom-right island),
///   * the square 8 <= p <= 24, 96 <= q <= 112 ... mapped below the band —
///     chosen inside p > q - 16 so it stays disjoint from the band.
/// A useful run reads the cross stencil at (p, q), making the accessed index
/// space mirror the parameter space for easy visualisation.
class DemoMultiRegionProgram final : public Program {
 public:
  explicit DemoMultiRegionProgram(int64_t n = 128);

  std::string_view name() const override { return "FIG4"; }
  std::string_view description() const override {
    return "multi-region useful space for schedule contrast (Fig. 4)";
  }
  const ParamSpace& param_space() const override { return space_; }
  const Shape& data_shape() const override { return shape_; }
  void Execute(const ParamValue& v, const ReadFn& read) const override;

  /// True when (p, q) passes the debloat test (is useful).
  bool IsUseful(double p, double q) const;

 private:
  int64_t n_;
  ParamSpace space_;
  Shape shape_;
  Stencil cross_;
};

}  // namespace kondo

#endif  // KONDO_WORKLOADS_DEMO_PROGRAM_H_
