#include "workloads/registry.h"

#include "workloads/block_programs.h"
#include "workloads/cs_programs.h"
#include "workloads/demo_program.h"
#include "workloads/prl_programs.h"
#include "workloads/real_app_programs.h"
#include "workloads/vpic_program.h"

namespace kondo {

std::vector<std::string> TableTwoProgramNames() {
  return {"CS",  "CS1",   "CS2",   "CS3",   "CS5",  "PRL",
          "LDC", "RDC",   "PRL3D", "LDC3D", "RDC3D"};
}

std::vector<std::string> MicroBenchmarkNames() {
  return {"CS", "PRL", "LDC", "RDC"};
}

std::vector<std::string> AllProgramNames() {
  std::vector<std::string> names = TableTwoProgramNames();
  names.push_back("ARD");
  names.push_back("MSI");
  names.push_back("VPIC");
  names.push_back("FIG4");
  return names;
}

std::unique_ptr<Program> CreateProgram(std::string_view name, int64_t n) {
  const int64_t n2 = n > 0 ? n : 128;
  const int64_t n3 = n > 0 ? n : 64;
  if (name == "CS") {
    return std::make_unique<CsProgram>(CsVariant::kBase, n2);
  }
  if (name == "CS1") {
    return std::make_unique<CsProgram>(CsVariant::kCs1, n2);
  }
  if (name == "CS2") {
    return std::make_unique<CsProgram>(CsVariant::kCs2, n2);
  }
  if (name == "CS3") {
    return std::make_unique<CsProgram>(CsVariant::kCs3, n2);
  }
  if (name == "CS5") {
    return std::make_unique<CsProgram>(CsVariant::kCs5, n2);
  }
  if (name == "PRL") {
    return std::make_unique<Prl2DProgram>(n2);
  }
  if (name == "PRL3D") {
    return std::make_unique<Prl3DProgram>(n3);
  }
  if (name == "LDC") {
    return std::make_unique<BlockProgram>(BlockCorners::kLeftDiagonal, 2, n2);
  }
  if (name == "RDC") {
    return std::make_unique<BlockProgram>(BlockCorners::kRightDiagonal, 2,
                                          n2);
  }
  if (name == "LDC3D") {
    return std::make_unique<BlockProgram>(BlockCorners::kLeftDiagonal, 3, n3);
  }
  if (name == "RDC3D") {
    return std::make_unique<BlockProgram>(BlockCorners::kRightDiagonal, 3,
                                          n3);
  }
  if (name == "ARD") {
    return std::make_unique<ArdProgram>();
  }
  if (name == "MSI") {
    return std::make_unique<MsiProgram>();
  }
  if (name == "VPIC") {
    return std::make_unique<VpicProgram>(n > 0 ? n : 32);
  }
  if (name == "FIG4") {
    return std::make_unique<DemoMultiRegionProgram>(n2);
  }
  return nullptr;
}

std::vector<std::string> AllMultiFileProgramNames() {
  return {"STORM", "CLIMATE"};
}

std::unique_ptr<MultiFileProgram> CreateMultiFileProgram(std::string_view name,
                                                         int64_t n) {
  const int64_t extent = n > 0 ? n : 64;
  if (name == "STORM") {
    return std::make_unique<StormTrackProgram>(extent);
  }
  if (name == "CLIMATE") {
    return std::make_unique<ClimateRegionProgram>(extent);
  }
  return nullptr;
}

}  // namespace kondo
