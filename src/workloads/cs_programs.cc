#include "workloads/cs_programs.h"

#include <cmath>

namespace kondo {

std::string CsVariantName(CsVariant variant) {
  switch (variant) {
    case CsVariant::kBase:
      return "CS";
    case CsVariant::kCs1:
      return "CS1";
    case CsVariant::kCs2:
      return "CS2";
    case CsVariant::kCs3:
      return "CS3";
    case CsVariant::kCs5:
      return "CS5";
  }
  return "CS?";
}

CsProgram::CsProgram(CsVariant variant, int64_t n)
    : variant_(variant),
      n_(n),
      name_(CsVariantName(variant)),
      space_({ParamRange{0, static_cast<double>(n - 1), true},
              ParamRange{0, static_cast<double>(n - 1), true}}),
      shape_({n, n}),
      cross_(CrossStencil2D()) {
  switch (variant) {
    case CsVariant::kBase:
      description_ = "Listing-1 cross stencil, stepX <= stepY";
      break;
    case CsVariant::kCs1:
      description_ = "cross stencil with a distant sparse second triangle";
      break;
    case CsVariant::kCs2:
      description_ = "cross stencil restricted to |stepX-stepY| <= 4";
      break;
    case CsVariant::kCs3:
      description_ = "cross stencil useful only for stepY >= 3N/4";
      break;
    case CsVariant::kCs5:
      description_ = "dense small-step cone plus sparse far-corner lattice";
      break;
  }
}

void CsProgram::Walk(int64_t i0, int64_t j0, int64_t sx, int64_t sy,
                     int read_modulo, const ReadFn& read) const {
  int64_t i = i0;
  int64_t j = j0;
  int64_t k = 0;
  while (i + 1 <= n_ - 1 && j + 1 <= n_ - 1) {
    if (read_modulo <= 1 || k % read_modulo == 0) {
      cross_.Apply(shape_, Index{i, j}, read);
    }
    if (sx == 0 && sy == 0) {
      break;  // A zero step would loop forever; one cross is read.
    }
    i += sx;
    j += sy;
    ++k;
  }
}

const IndexSet& CsProgram::GroundTruth() const {
  if (variant_ != CsVariant::kCs3) {
    return Program::GroundTruth();
  }
  MutexLock lock(ground_truth_mu_);
  if (!ground_truth_ready_) {
    // Useful runs satisfy sx <= sy and sy >= 3n/4. Position k of the walk is
    // read while both coordinates are <= n-2; k >= 2 overshoots (2*sy >=
    // 1.5n), so the accessed positions are (0, 0) plus every (sx, sy) with
    // sx <= n-2 — dilated by the cross stencil.
    IndexSet gt(shape_);
    const ReadFn insert = [&gt](const Index& index) { gt.Insert(index); };
    cross_.Apply(shape_, Index{0, 0}, insert);
    for (int64_t y = 3 * n_ / 4; y <= n_ - 2; ++y) {
      for (int64_t x = 0; x <= std::min(y, n_ - 2); ++x) {
        cross_.Apply(shape_, Index{x, y}, insert);
      }
    }
    ground_truth_cache_ = std::move(gt);
    ground_truth_ready_ = true;
  }
  return ground_truth_cache_;
}

void CsProgram::Execute(const ParamValue& v, const ReadFn& read) const {
  const int64_t sx = static_cast<int64_t>(std::llround(v[0]));
  const int64_t sy = static_cast<int64_t>(std::llround(v[1]));
  if (sx < 0 || sy < 0 || sx > n_ - 1 || sy > n_ - 1) {
    return;
  }
  const int64_t gap = n_ / 2;
  switch (variant_) {
    case CsVariant::kBase:
      if (sx > sy) {
        return;
      }
      Walk(0, 0, sx, sy, 1, read);
      return;
    case CsVariant::kCs1:
      if (sx <= sy) {
        Walk(0, 0, sx, sy, 1, read);
      } else if (sx >= sy + gap) {
        // Mirror triangle anchored at (gap, 0), read every 4th position.
        Walk(gap, 0, sx - gap, sy, 4, read);
      }
      return;
    case CsVariant::kCs2:
      // Diagonal band: useful only when the steps are near-equal; the walk
      // then follows the unit diagonal from (sx, sy), so the union over Θ
      // is the dense band |x - y| <= 4 (dilated by the cross stencil).
      if (std::llabs(sx - sy) > 4) {
        return;
      }
      Walk(sx, sy, 1, 1, 1, read);
      return;
    case CsVariant::kCs3:
      if (sx > sy || sy < 3 * n_ / 4) {
        return;
      }
      Walk(0, 0, sx, sy, 1, read);
      return;
    case CsVariant::kCs5:
      if (sx <= sy && sy <= n_ / 4) {
        Walk(0, 0, sx, sy, 1, read);
      } else if (sx >= 3 * n_ / 4 && sy >= 3 * n_ / 4 && sx % 4 == 0 &&
                 sy % 4 == 0) {
        // A single cross on the sparse far-corner lattice.
        cross_.Apply(shape_, Index{sx, sy}, read);
      }
      return;
  }
}

}  // namespace kondo
