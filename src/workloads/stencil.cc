#include "workloads/stencil.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace kondo {

Stencil CrossStencil2D() {
  return Stencil{"cross2x2",
                 {Index{0, 0}, Index{1, 0}, Index{0, 1}, Index{1, 1}}};
}

Stencil SolidRectStencil(int64_t w, int64_t h) {
  Stencil stencil;
  stencil.name = "rect" + std::to_string(w) + "x" + std::to_string(h);
  for (int64_t x = 0; x < w; ++x) {
    for (int64_t y = 0; y < h; ++y) {
      stencil.offsets.push_back(Index{x, y});
    }
  }
  return stencil;
}

Stencil SolidBoxStencil(int64_t w, int64_t h, int64_t d) {
  Stencil stencil;
  stencil.name = "box" + std::to_string(w) + "x" + std::to_string(h) + "x" +
                 std::to_string(d);
  for (int64_t x = 0; x < w; ++x) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t z = 0; z < d; ++z) {
        stencil.offsets.push_back(Index{x, y, z});
      }
    }
  }
  return stencil;
}

Stencil HoledRectStencil(int64_t w, int64_t h, int64_t hole) {
  Stencil stencil;
  stencil.name = "holed" + std::to_string(w) + "x" + std::to_string(h);
  const int64_t hx0 = (w - hole) / 2;
  const int64_t hy0 = (h - hole) / 2;
  for (int64_t x = 0; x < w; ++x) {
    for (int64_t y = 0; y < h; ++y) {
      const bool in_hole =
          x >= hx0 && x < hx0 + hole && y >= hy0 && y < hy0 + hole;
      if (!in_hole) {
        stencil.offsets.push_back(Index{x, y});
      }
    }
  }
  return stencil;
}

std::string RenderStencil2D(const Stencil& stencil) {
  if (stencil.offsets.empty()) {
    return "";
  }
  int64_t min_x = stencil.offsets[0][0], max_x = min_x;
  int64_t min_y = stencil.offsets[0][1], max_y = min_y;
  std::set<std::pair<int64_t, int64_t>> members;
  for (const Index& offset : stencil.offsets) {
    min_x = std::min(min_x, offset[0]);
    max_x = std::max(max_x, offset[0]);
    min_y = std::min(min_y, offset[1]);
    max_y = std::max(max_y, offset[1]);
    members.insert({offset[0], offset[1]});
  }
  std::ostringstream os;
  for (int64_t x = min_x; x <= max_x; ++x) {
    for (int64_t y = min_y; y <= max_y; ++y) {
      os << (members.count({x, y}) > 0 ? '#' : '.');
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace kondo
