#ifndef KONDO_WORKLOADS_REAL_APP_PROGRAMS_H_
#define KONDO_WORKLOADS_REAL_APP_PROGRAMS_H_

#include "workloads/program.h"

namespace kondo {

/// ARD — Atmospheric River Detection (Table III), derived from Tang et
/// al.'s usage study: the application reads a block whose width and height
/// are parameterised while the entire temporal dimension is covered across
/// runs. The paper's 1536x2304x4096 (217 GB) mesh is scaled by 8 in the two
/// spatial dimensions and to 512 temporal steps (see DESIGN.md §2); the
/// parameter ranges keep the paper's fractional extents, so the ground-truth
/// subset is the same 2.8% of the mesh (97.2% debloat).
///
/// A run with v = (w, h, t) reads the plane [0,w) x [0,h) x {t}.
class ArdProgram final : public Program {
 public:
  /// `scale` divides the paper's spatial dims (default 8 -> 192x288x512).
  explicit ArdProgram(int64_t scale = 8);

  std::string_view name() const override { return "ARD"; }
  std::string_view description() const override {
    return "atmospheric river detection: parameterised w/h block, full "
           "temporal range";
  }
  const ParamSpace& param_space() const override { return space_; }
  const Shape& data_shape() const override { return shape_; }
  void Execute(const ParamValue& v, const ReadFn& read) const override;

  /// Analytic ground truth: the solid box [0,w_max) x [0,h_max) x [0,T).
  const IndexSet& GroundTruth() const override;

 private:
  int64_t w_max_;
  int64_t h_max_;
  int64_t t_max_;
  ParamSpace space_;
  Shape shape_;
};

/// MSI — Mass Spectrometry Imaging (Table III): two dimensions are read
/// entirely across runs while the third (spectral) dimension is read between
/// a fixed start and a parameterised end. The paper's 394x518x133092
/// (405 GB) mesh is scaled (default 50x65x1024 with the spectral window
/// [z_lo, z_hi] preserving the paper's 3.76% fraction -> 96.24% debloat).
///
/// A run with v = (x, y, z) reads the spectral run (x, y, [z_lo, z]).
class MsiProgram final : public Program {
 public:
  MsiProgram(int64_t nx = 50, int64_t ny = 65, int64_t nz = 1024);

  std::string_view name() const override { return "MSI"; }
  std::string_view description() const override {
    return "mass spectrometry imaging: full-plane pixels, bounded spectral "
           "window";
  }
  const ParamSpace& param_space() const override { return space_; }
  const Shape& data_shape() const override { return shape_; }
  void Execute(const ParamValue& v, const ReadFn& read) const override;

  /// Analytic ground truth: the slab [0,nx) x [0,ny) x [z_lo, z_hi].
  const IndexSet& GroundTruth() const override;

  int64_t z_lo() const { return z_lo_; }
  int64_t z_hi() const { return z_hi_; }

 private:
  int64_t nx_;
  int64_t ny_;
  int64_t nz_;
  int64_t z_lo_;
  int64_t z_hi_;
  ParamSpace space_;
  Shape shape_;
};

}  // namespace kondo

#endif  // KONDO_WORKLOADS_REAL_APP_PROGRAMS_H_
