#ifndef KONDO_WORKLOADS_BLOCK_PROGRAMS_H_
#define KONDO_WORKLOADS_BLOCK_PROGRAMS_H_

#include <string>

#include "workloads/program.h"
#include "workloads/stencil.h"

namespace kondo {

/// Which diagonal the two block regions sit on.
enum class BlockCorners {
  kLeftDiagonal,   // LDC: blocks near (0,0,..) and (n-1,n-1,..).
  kRightDiagonal,  // RDC: blocks near (n-1,0,..) and (0,n-1,..).
};

/// LDC / RDC — the solid-rectangle-stencil micro-benchmarks. A run reads
/// one solid block at a parameter-chosen anchor in each of two opposite
/// corner regions; the union over Θ is two clearly separated solid squares
/// (cubes in 3-D). The separation is what gives Kondo precision 1 on these
/// programs (Section V-D2): the two carved hulls never merge.
class BlockProgram final : public Program {
 public:
  /// `rank` is 2 or 3; `n` the array extent per dimension (defaults 128 in
  /// 2-D, 64 in 3-D when `n` = 0). The block edge is n/8 and anchors range
  /// over [0, n/4] per dimension.
  BlockProgram(BlockCorners corners, int rank, int64_t n = 0);

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  const ParamSpace& param_space() const override { return space_; }
  const Shape& data_shape() const override { return shape_; }
  void Execute(const ParamValue& v, const ReadFn& read) const override;

  int64_t block_edge() const { return block_; }

 private:
  BlockCorners corners_;
  int rank_;
  int64_t n_;
  int64_t block_;
  std::string name_;
  std::string description_;
  ParamSpace space_;
  Shape shape_;
  Stencil block_stencil_;
};

}  // namespace kondo

#endif  // KONDO_WORKLOADS_BLOCK_PROGRAMS_H_
