#ifndef KONDO_WORKLOADS_REGISTRY_H_
#define KONDO_WORKLOADS_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/multi_file_program.h"
#include "workloads/program.h"

namespace kondo {

/// Names of the 11 micro-benchmark and synthetic programs of Table II, in
/// the paper's presentation order.
std::vector<std::string> TableTwoProgramNames();

/// Names of the four H5bench micro-benchmarks (Fig. 7 groups).
std::vector<std::string> MicroBenchmarkNames();

/// All registered program names (Table II + ARD, MSI, FIG4).
std::vector<std::string> AllProgramNames();

/// Instantiates a program by name. `n` overrides the default array extent
/// when positive (2-D programs default to 128, 3-D to 64; ARD/MSI have
/// their own scaled defaults and ignore `n`). Returns nullptr for unknown
/// names.
std::unique_ptr<Program> CreateProgram(std::string_view name, int64_t n = 0);

/// All registered multi-file program names (the sharding workloads).
std::vector<std::string> AllMultiFileProgramNames();

/// Instantiates a multi-file program by name ("STORM", "CLIMATE"); `n`
/// overrides the default grid extent when positive. Returns nullptr for
/// unknown names.
std::unique_ptr<MultiFileProgram> CreateMultiFileProgram(std::string_view name,
                                                         int64_t n = 0);

}  // namespace kondo

#endif  // KONDO_WORKLOADS_REGISTRY_H_
