#include "workloads/program.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace kondo {

IndexSet Program::AccessSet(const ParamValue& v) const {
  IndexSet result(data_shape());
  Execute(v, [&result](const Index& index) { result.Insert(index); });
  return result;
}

Status Program::ExecuteOnFile(const ParamValue& v, TracedFile& file) const {
  if (!(file.shape() == data_shape())) {
    return InvalidArgumentError("data file shape does not match program");
  }
  Status status = OkStatus();
  Execute(v, [&file, &status](const Index& index) {
    if (!status.ok()) {
      return;
    }
    StatusOr<double> value = file.ReadElement(index);
    if (!value.ok()) {
      status = value.status();
    }
  });
  return status;
}

const IndexSet& Program::GroundTruth() const {
  MutexLock lock(ground_truth_mu_);
  if (!ground_truth_ready_) {
    ground_truth_cache_ = GroundTruthByEnumeration(2e6);
    ground_truth_ready_ = true;
  }
  return ground_truth_cache_;
}

IndexSet Program::GroundTruthByEnumeration(
    double max_enumerated_valuations) const {
  const ParamSpace& space = param_space();
  const double valuations = space.NumValuations();
  KONDO_CHECK(std::isfinite(valuations) &&
              valuations <= max_enumerated_valuations)
      << "Θ too large to enumerate for " << name()
      << "; override GroundTruth()";

  IndexSet result(data_shape());
  // Odometer over the integer grid of Θ.
  const int m = space.num_params();
  std::vector<int64_t> lo(m), hi(m), cur(m);
  for (int i = 0; i < m; ++i) {
    lo[i] = static_cast<int64_t>(std::ceil(space.range(i).lo));
    hi[i] = static_cast<int64_t>(std::floor(space.range(i).hi));
    cur[i] = lo[i];
  }
  ParamValue v(m);
  while (true) {
    for (int i = 0; i < m; ++i) {
      v[i] = static_cast<double>(cur[i]);
    }
    Execute(v, [&result](const Index& index) { result.Insert(index); });
    int d = m - 1;
    while (d >= 0 && ++cur[d] > hi[d]) {
      cur[d] = lo[d];
      --d;
    }
    if (d < 0) {
      break;
    }
  }
  return result;
}

}  // namespace kondo
