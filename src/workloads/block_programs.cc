#include "workloads/block_programs.h"

#include <cmath>

#include "common/logging.h"

namespace kondo {

BlockProgram::BlockProgram(BlockCorners corners, int rank, int64_t n)
    : corners_(corners), rank_(rank) {
  KONDO_CHECK(rank == 2 || rank == 3);
  n_ = n > 0 ? n : (rank == 2 ? 128 : 64);
  block_ = n_ / 8;
  name_ = corners == BlockCorners::kLeftDiagonal ? "LDC" : "RDC";
  if (rank == 3) {
    name_ += "3D";
  }
  description_ =
      std::string("two separated solid blocks on the ") +
      (corners == BlockCorners::kLeftDiagonal ? "left" : "right") +
      " diagonal";

  std::vector<ParamRange> ranges(
      static_cast<size_t>(rank),
      ParamRange{0.0, static_cast<double>(n_ / 4), true});
  space_ = ParamSpace(std::move(ranges));

  std::vector<int64_t> dims(static_cast<size_t>(rank), n_);
  shape_ = Shape(dims);
  block_stencil_ = rank == 2 ? SolidRectStencil(block_, block_)
                             : SolidBoxStencil(block_, block_, block_);
}

void BlockProgram::Execute(const ParamValue& v, const ReadFn& read) const {
  Index anchor(rank_);
  for (int d = 0; d < rank_; ++d) {
    const int64_t a = static_cast<int64_t>(std::llround(v[d]));
    if (a < 0 || a > n_ / 4) {
      return;
    }
    anchor[d] = a;
  }

  // First block: anchored directly (LDC) or mirrored in x (RDC).
  Index first = anchor;
  if (corners_ == BlockCorners::kRightDiagonal) {
    first[0] = n_ - block_ - anchor[0];
  }
  block_stencil_.Apply(shape_, first, read);

  // Second block: the opposite corner (mirror every dimension of `first`).
  Index second(rank_);
  for (int d = 0; d < rank_; ++d) {
    second[d] = n_ - block_ - first[d];
  }
  block_stencil_.Apply(shape_, second, read);
}

}  // namespace kondo
