#include "provenance/persist.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "audit/event_store.h"
#include "common/thread_annotations.h"
#include "provenance/kel2_reader.h"

namespace kondo {

AuditPersistFn MakeKel2Persister(std::string path,
                                 Kel2WriterOptions options) {
  return [path = std::move(path), options](const EventLog& log) -> Status {
    KONDO_ASSIGN_OR_RETURN(Kel2Writer writer,
                           Kel2Writer::Create(path, options));
    KONDO_RETURN_IF_ERROR(writer.AppendAll(log));
    return writer.Close();
  };
}

AuditPersistFn MakeKel1Persister(std::string path, Env* env) {
  return [path = std::move(path), env](const EventLog& log) -> Status {
    KONDO_ASSIGN_OR_RETURN(EventStoreWriter writer,
                           EventStoreWriter::Create(path, env));
    KONDO_RETURN_IF_ERROR(writer.AppendAll(log));
    return writer.Close();
  };
}

StatusOr<CampaignLineageSink> CampaignLineageSink::Create(
    const std::string& path, Kel2WriterOptions options) {
  KONDO_ASSIGN_OR_RETURN(Kel2Writer writer,
                         Kel2Writer::Create(path, options));
  return CampaignLineageSink(
      std::make_shared<Kel2Writer>(std::move(writer)));
}

AuditPersistFn CampaignLineageSink::persister() const {
  return [writer = writer_, runs = runs_](const EventLog& log) -> Status {
    KONDO_RETURN_IF_ERROR(writer->AppendAll(log));
    ++*runs;
    return OkStatus();
  };
}

Status CampaignLineageSink::Close() { return writer_->Close(); }

AuditPersistFn MakeSerializedPersister(AuditPersistFn persist) {
  auto mu = std::make_shared<Mutex>();
  return [mu, persist = std::move(persist)](const EventLog& log) -> Status {
    MutexLock lock(*mu);
    return persist(log);
  };
}

StatusOr<CompactStats> CompactLineageStore(const std::string& input_path,
                                           const std::string& output_path,
                                           Kel2WriterOptions options) {
  KONDO_ASSIGN_OR_RETURN(std::vector<Event> events,
                         ReadLineageStore(input_path));
  KONDO_ASSIGN_OR_RETURN(Kel2Writer writer,
                         Kel2Writer::Create(output_path, options));
  for (const Event& event : events) {
    KONDO_RETURN_IF_ERROR(writer.Append(event));
  }
  KONDO_RETURN_IF_ERROR(writer.Close());

  CompactStats stats;
  stats.events = static_cast<int64_t>(events.size());
  stats.blocks = writer.blocks_written();
  KONDO_ASSIGN_OR_RETURN(stats.input_bytes, FileSizeBytes(input_path));
  KONDO_ASSIGN_OR_RETURN(stats.output_bytes, FileSizeBytes(output_path));
  return stats;
}

StatusOr<int64_t> FileSizeBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open: " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const int64_t size = std::ftell(file);
  std::fclose(file);
  if (size < 0) {
    return InternalError("cannot size: " + path);
  }
  return size;
}

}  // namespace kondo
