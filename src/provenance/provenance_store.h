#ifndef KONDO_PROVENANCE_PROVENANCE_STORE_H_
#define KONDO_PROVENANCE_PROVENANCE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "audit/event.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "provenance/kel2_reader.h"
#include "provenance/provenance_query.h"

namespace kondo {

/// A long-lived, thread-safe handle on an open KEL2 store — the query
/// engine's entry points made callable from concurrent server sessions.
///
/// ProvenanceQuery itself is deliberately single-threaded (its decode memo
/// and the reader's seek+read share unguarded state), so this wrapper owns
/// reader + query behind one mutex: queries against the same store
/// serialise, queries against different stores run in parallel — which
/// matches the serve layer's open-store pool, one ProvenanceStore per
/// artifact. The memo survives across requests, so a hot region decodes
/// each block at most once for the store's lifetime.
class ProvenanceStore {
 public:
  /// Opens a KEL2 store; a KEL1 stream is rejected (kInvalidArgument) —
  /// in-situ block skipping is the point of serving queries server-side.
  static StatusOr<std::unique_ptr<ProvenanceStore>> Open(
      const std::string& path);

  /// Data-access events of `file_id` overlapping [begin, end), store order.
  /// With `query_stats` non-null, receives the engine counters attributable
  /// to *this* query alone (computed as a delta under the store lock, so
  /// concurrent queries cannot bleed into it).
  StatusOr<std::vector<Event>> EventsOverlapping(
      int64_t file_id, int64_t begin, int64_t end,
      ProvenanceQueryStats* query_stats = nullptr) KONDO_EXCLUDES(mu_);

  /// Sorted, deduplicated pids touching [begin, end) of `file_id`.
  StatusOr<std::vector<int64_t>> RunsTouching(int64_t file_id, int64_t begin,
                                              int64_t end)
      KONDO_EXCLUDES(mu_);

  /// Snapshot of the engine's in-situ counters.
  ProvenanceQueryStats QueryStats() const KONDO_EXCLUDES(mu_);

  int64_t NumBlocks() const { return num_blocks_; }
  int64_t NumEvents() const { return num_events_; }
  const std::string& path() const { return path_; }

 private:
  explicit ProvenanceStore(Kel2Reader reader);

  const std::string path_;
  const int64_t num_blocks_;
  const int64_t num_events_;
  mutable Mutex mu_;
  Kel2Reader reader_ KONDO_GUARDED_BY(mu_);
  ProvenanceQuery query_ KONDO_GUARDED_BY(mu_);
};

}  // namespace kondo

#endif  // KONDO_PROVENANCE_PROVENANCE_STORE_H_
