#include "provenance/kel2_writer.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/strings.h"
#include "provenance/crc32.h"
#include "provenance/varint.h"

namespace kondo {
namespace {

void AppendI64(int64_t value, std::string* out) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  out->append(buf, 8);
}

void AppendU32(uint32_t value, std::string* out) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  out->append(buf, 4);
}

/// Delta + zigzag + varint column: each value is stored as the signed
/// difference from its predecessor (the first from 0), so near-sequential
/// streams collapse to one byte per value.
void EncodeDeltaColumn(const std::vector<Event>& events,
                       int64_t (*field)(const Event&), std::string* out) {
  int64_t prev = 0;
  for (const Event& event : events) {
    const int64_t value = field(event);
    AppendSignedVarint(value - prev, out);
    prev = value;
  }
}

}  // namespace

void EncodeKel2Block(const std::vector<Event>& events, std::string* out) {
  std::string payload;
  payload.reserve(events.size() * 4);

  EncodeDeltaColumn(events, [](const Event& e) { return e.id.pid; },
                    &payload);
  EncodeDeltaColumn(events, [](const Event& e) { return e.id.file_id; },
                    &payload);

  // Types: run-length pairs (u8 value, varint run).
  for (size_t i = 0; i < events.size();) {
    size_t run = 1;
    while (i + run < events.size() &&
           events[i + run].type == events[i].type) {
      ++run;
    }
    payload.push_back(static_cast<char>(events[i].type));
    AppendVarint(run, &payload);
    i += run;
  }

  EncodeDeltaColumn(events, [](const Event& e) { return e.offset; },
                    &payload);

  // Sizes: run-length pairs (zigzag varint value, varint run) — stencil
  // reads repeat the element width thousands of times.
  for (size_t i = 0; i < events.size();) {
    size_t run = 1;
    while (i + run < events.size() &&
           events[i + run].size == events[i].size) {
      ++run;
    }
    AppendSignedVarint(events[i].size, &payload);
    AppendVarint(run, &payload);
    i += run;
  }

  // Descriptor. Offset bounds cover data-access events only so blocks of
  // pure open/close traffic never match an interval query.
  int64_t min_offset = std::numeric_limits<int64_t>::max();
  int64_t max_end = std::numeric_limits<int64_t>::min();
  int64_t min_pid = std::numeric_limits<int64_t>::max();
  int64_t max_pid = std::numeric_limits<int64_t>::min();
  int64_t min_file = std::numeric_limits<int64_t>::max();
  int64_t max_file = std::numeric_limits<int64_t>::min();
  for (const Event& event : events) {
    min_pid = std::min(min_pid, event.id.pid);
    max_pid = std::max(max_pid, event.id.pid);
    min_file = std::min(min_file, event.id.file_id);
    max_file = std::max(max_file, event.id.file_id);
    if (event.IsDataAccess() && event.size > 0) {
      min_offset = std::min(min_offset, event.offset);
      max_end = std::max(max_end, event.offset + event.size);
    }
  }
  if (events.empty()) {
    min_pid = max_pid = min_file = max_file = 0;
  }
  if (max_end == std::numeric_limits<int64_t>::min()) {
    min_offset = 0;  // No data accesses: empty range (min > max).
    max_end = -1;
  }

  AppendU32(static_cast<uint32_t>(payload.size()), out);
  AppendU32(Crc32(payload.data(), payload.size()), out);
  AppendU32(static_cast<uint32_t>(events.size()), out);
  AppendU32(0, out);
  AppendI64(min_offset, out);
  AppendI64(max_end, out);
  AppendI64(min_pid, out);
  AppendI64(max_pid, out);
  AppendI64(min_file, out);
  AppendI64(max_file, out);
  out->append(payload);
}

StatusOr<Kel2Writer> Kel2Writer::Create(const std::string& path,
                                        const Kel2WriterOptions& options) {
  if (options.events_per_block <= 0) {
    return InvalidArgumentError(
        StrCat("events_per_block must be positive, got ",
               options.events_per_block));
  }
  StatusOr<AtomicFile> file = AtomicFile::Create(path, options.env);
  if (!file.ok()) {
    return Status(file.status().code(),
                  StrCat("cannot create KEL2 store: ", path, ": ",
                         file.status().message()));
  }
  char header[kKel2HeaderBytes] = {};
  std::memcpy(header, kKel2Magic, 4);
  const Status written = file->Append(header, kKel2HeaderBytes);
  if (!written.ok()) {
    return Status(written.code(),
                  StrCat("KEL2 header write: ", written.message()));
  }
  return Kel2Writer(*std::move(file), options);
}

Kel2Writer::Kel2Writer(Kel2Writer&& other) noexcept = default;

Kel2Writer& Kel2Writer::operator=(Kel2Writer&& other) noexcept {
  if (this != &other) {
    // noexcept move-assign cannot propagate the status; callers that need
    // the tail durable call Close() explicitly.
    // kondo-lint: allow(R3) move-assign swallows the stale writer's status
    (void)Close();
    file_ = std::move(other.file_);
    options_ = other.options_;
    buffer_ = std::move(other.buffer_);
    events_written_ = other.events_written_;
    blocks_written_ = other.blocks_written_;
  }
  return *this;
}

Kel2Writer::~Kel2Writer() {
  // Destructors cannot propagate the status; the uncommitted tmp store is
  // discarded if the commit fails, so no torn artifact is published.
  // kondo-lint: allow(R3) destructor swallows the close status by design
  (void)Close();
}

Status Kel2Writer::Append(const Event& event) {
  if (!file_.open()) {
    return FailedPreconditionError("KEL2 store already closed: " +
                                   file_.path());
  }
  buffer_.push_back(event);
  if (static_cast<int64_t>(buffer_.size()) >= options_.events_per_block) {
    return SealBlock();
  }
  return OkStatus();
}

Status Kel2Writer::AppendAll(const EventLog& log) {
  for (const Event& event : log.events()) {
    KONDO_RETURN_IF_ERROR(Append(event));
  }
  return OkStatus();
}

Status Kel2Writer::SealBlock() {
  std::string block;
  EncodeKel2Block(buffer_, &block);
  const Status written = file_.Append(block);
  if (!written.ok()) {
    return Status(written.code(),
                  StrCat("KEL2 block write (block ", blocks_written_,
                         "): ", written.message()));
  }
  events_written_ += static_cast<int64_t>(buffer_.size());
  ++blocks_written_;
  buffer_.clear();
  return OkStatus();
}

Status Kel2Writer::Flush() {
  if (!file_.open()) {
    return FailedPreconditionError("KEL2 store already closed: " +
                                   file_.path());
  }
  if (!buffer_.empty()) {
    KONDO_RETURN_IF_ERROR(SealBlock());
  }
  const Status flushed = file_.Flush();
  if (!flushed.ok()) {
    return Status(flushed.code(),
                  StrCat("KEL2 flush failed: ", flushed.message()));
  }
  return OkStatus();
}

Status Kel2Writer::Close() {
  if (!file_.open()) {
    return OkStatus();
  }
  Status seal = OkStatus();
  if (!buffer_.empty()) {
    seal = SealBlock();
  }
  if (!seal.ok()) {
    // Do not publish a store missing its tail block; drop the tmp file.
    file_.Discard();
    return seal;
  }
  const Status committed = file_.Commit();
  if (!committed.ok()) {
    return Status(committed.code(),
                  StrCat("KEL2 close failed: ", file_.path(), ": ",
                         committed.message()));
  }
  return OkStatus();
}

}  // namespace kondo
