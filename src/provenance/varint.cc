#include "provenance/varint.h"

namespace kondo {

void AppendVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool VarintReader::Next(uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (pos_ < size_) {
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift == 63 && byte > 1) {
      return false;  // Over-long encoding would overflow 64 bits.
    }
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
    if (shift > 63) {
      return false;
    }
  }
  return false;  // Truncated.
}

}  // namespace kondo
