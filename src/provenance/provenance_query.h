#ifndef KONDO_PROVENANCE_PROVENANCE_QUERY_H_
#define KONDO_PROVENANCE_PROVENANCE_QUERY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "array/index_set.h"
#include "audit/event.h"
#include "audit/offset_mapper.h"
#include "common/interval_set.h"
#include "common/statusor.h"
#include "provenance/kel2_reader.h"

namespace kondo {

/// Counters proving the in-situ property: an interval query should decode
/// strictly fewer blocks than a full scan whenever the store is larger
/// than one block and accesses are not uniformly smeared.
struct ProvenanceQueryStats {
  int64_t queries = 0;
  int64_t blocks_considered = 0;  // Descriptors inspected.
  int64_t blocks_skipped = 0;     // Rejected from the descriptor alone.
  int64_t blocks_decoded = 0;     // Payloads actually read + CRC'd.
  int64_t block_cache_hits = 0;   // Served from the decode memo.
  int64_t events_scanned = 0;     // Events filtered after decode.
};

/// In-situ query engine over a KEL2 store. Answers lineage questions by
/// pruning on block descriptors (min/max offset, pid and file ranges)
/// before decoding payloads — Zhao & Krishnan's "query the compressed
/// representation" applied to Kondo's `<id, c, l, sz>` events. Decoded
/// blocks are memoized, so repeated queries over a hot region decode each
/// block at most once.
///
/// A "run" below is a pid: the auditor assigns each audited execution its
/// own process id, so per-run and per-pid are the same partition.
class ProvenanceQuery {
 public:
  /// `reader` must outlive the query object.
  explicit ProvenanceQuery(const Kel2Reader* reader);

  /// Data-access events of `file_id` overlapping [begin, end), in store
  /// order.
  StatusOr<std::vector<Event>> EventsOverlapping(int64_t file_id,
                                                 int64_t begin, int64_t end);

  /// Sorted, deduplicated pids with at least one data access of `file_id`
  /// overlapping [begin, end) — "which runs touched byte range [a,b)".
  StatusOr<std::vector<int64_t>> RunsTouching(int64_t file_id, int64_t begin,
                                              int64_t end);

  /// Merged accessed byte ranges of `file_id` across all runs.
  StatusOr<IntervalSet> AccessedRanges(int64_t file_id);

  /// Merged accessed byte ranges of `file_id` for one run.
  StatusOr<IntervalSet> AccessedRangesForRun(int64_t pid, int64_t file_id);

  /// Run -> total distinct bytes of `file_id` that run accessed (ranges
  /// merged per run before summing).
  StatusOr<std::map<int64_t, int64_t>> PerRunCoverage(int64_t file_id);

  /// Distinct-bytes-covered histogram of `file_id` with `bucket_bytes`-wide
  /// buckets from offset 0 to the store's maximum accessed end; each entry
  /// is in [0, bucket_bytes].
  StatusOr<std::vector<int64_t>> CoverageHistogram(int64_t file_id,
                                                   int64_t bucket_bytes);

  /// The element-index view of AccessedRanges for the carver: merged byte
  /// ranges mapped through the data file's layout into an IndexSet.
  StatusOr<IndexSet> AccessedIndices(int64_t file_id,
                                     const OffsetMapper& mapper);

  const ProvenanceQueryStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ProvenanceQueryStats(); }

 private:
  /// Decodes block `index` through the memo.
  StatusOr<const std::vector<Event>*> Block(size_t index);

  const Kel2Reader* reader_;
  std::vector<std::optional<std::vector<Event>>> decoded_;
  ProvenanceQueryStats stats_;
};

}  // namespace kondo

#endif  // KONDO_PROVENANCE_PROVENANCE_QUERY_H_
