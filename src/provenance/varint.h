#ifndef KONDO_PROVENANCE_VARINT_H_
#define KONDO_PROVENANCE_VARINT_H_

#include <cstdint>
#include <string>

namespace kondo {

/// LEB128 variable-length integer codec used by the KEL2 columnar block
/// payload. Offsets in stencil-style lineage are near-sequential, so the
/// delta + zigzag + varint pipeline collapses most 8-byte fields to 1 byte.

/// Appends `value` to `out` as an unsigned LEB128 varint (1..10 bytes).
void AppendVarint(uint64_t value, std::string* out);

/// Maps a signed value onto the unsigned varint space so that small
/// magnitudes of either sign stay short: 0,-1,1,-2,... -> 0,1,2,3,...
inline uint64_t ZigzagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

inline int64_t ZigzagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

/// Appends a signed value as zigzag + varint.
inline void AppendSignedVarint(int64_t value, std::string* out) {
  AppendVarint(ZigzagEncode(value), out);
}

/// Bounds-checked varint decoder over a byte range.
class VarintReader {
 public:
  VarintReader(const char* data, size_t size) : data_(data), size_(size) {}

  /// Decodes the next varint into `*value`. Returns false on truncated or
  /// over-long input (never reads past the end).
  bool Next(uint64_t* value);

  /// Reads one raw byte (the RLE type column interleaves raw value bytes
  /// with varint run lengths).
  bool NextByte(uint8_t* value) {
    if (pos_ >= size_) {
      return false;
    }
    *value = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  /// Decodes a zigzag-encoded signed varint.
  bool NextSigned(int64_t* value) {
    uint64_t raw;
    if (!Next(&raw)) {
      return false;
    }
    *value = ZigzagDecode(raw);
    return true;
  }

  /// Bytes consumed so far.
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace kondo

#endif  // KONDO_PROVENANCE_VARINT_H_
