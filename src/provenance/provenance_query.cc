#include "provenance/provenance_query.h"

#include <algorithm>

#include "common/strings.h"

namespace kondo {

ProvenanceQuery::ProvenanceQuery(const Kel2Reader* reader)
    : reader_(reader), decoded_(reader->blocks().size()) {}

StatusOr<const std::vector<Event>*> ProvenanceQuery::Block(size_t index) {
  if (decoded_[index].has_value()) {
    ++stats_.block_cache_hits;
  } else {
    KONDO_ASSIGN_OR_RETURN(std::vector<Event> events,
                           reader_->DecodeBlock(index));
    decoded_[index] = std::move(events);
    ++stats_.blocks_decoded;
  }
  return &*decoded_[index];
}

StatusOr<std::vector<Event>> ProvenanceQuery::EventsOverlapping(
    int64_t file_id, int64_t begin, int64_t end) {
  ++stats_.queries;
  std::vector<Event> matches;
  const std::vector<Kel2BlockInfo>& blocks = reader_->blocks();
  for (size_t i = 0; i < blocks.size(); ++i) {
    ++stats_.blocks_considered;
    if (!blocks[i].MayMatch(file_id, begin, end)) {
      ++stats_.blocks_skipped;
      continue;
    }
    KONDO_ASSIGN_OR_RETURN(const std::vector<Event>* events, Block(i));
    for (const Event& event : *events) {
      ++stats_.events_scanned;
      if (event.IsDataAccess() && event.id.file_id == file_id &&
          event.offset < end && begin < event.offset + event.size) {
        matches.push_back(event);
      }
    }
  }
  return matches;
}

StatusOr<std::vector<int64_t>> ProvenanceQuery::RunsTouching(int64_t file_id,
                                                             int64_t begin,
                                                             int64_t end) {
  KONDO_ASSIGN_OR_RETURN(std::vector<Event> events,
                         EventsOverlapping(file_id, begin, end));
  std::vector<int64_t> pids;
  pids.reserve(events.size());
  for (const Event& event : events) {
    pids.push_back(event.id.pid);
  }
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  return pids;
}

StatusOr<IntervalSet> ProvenanceQuery::AccessedRanges(int64_t file_id) {
  ++stats_.queries;
  IntervalSet ranges;
  const std::vector<Kel2BlockInfo>& blocks = reader_->blocks();
  for (size_t i = 0; i < blocks.size(); ++i) {
    ++stats_.blocks_considered;
    if (!blocks[i].MayContainFile(file_id) ||
        blocks[i].min_offset > blocks[i].max_end) {
      ++stats_.blocks_skipped;
      continue;
    }
    KONDO_ASSIGN_OR_RETURN(const std::vector<Event>* events, Block(i));
    for (const Event& event : *events) {
      ++stats_.events_scanned;
      if (event.IsDataAccess() && event.id.file_id == file_id &&
          event.size > 0) {
        ranges.Add(event.offset, event.offset + event.size);
      }
    }
  }
  return ranges;
}

StatusOr<IntervalSet> ProvenanceQuery::AccessedRangesForRun(
    int64_t pid, int64_t file_id) {
  ++stats_.queries;
  IntervalSet ranges;
  const std::vector<Kel2BlockInfo>& blocks = reader_->blocks();
  for (size_t i = 0; i < blocks.size(); ++i) {
    ++stats_.blocks_considered;
    if (!blocks[i].MayContainFile(file_id) || pid < blocks[i].min_pid ||
        pid > blocks[i].max_pid || blocks[i].min_offset > blocks[i].max_end) {
      ++stats_.blocks_skipped;
      continue;
    }
    KONDO_ASSIGN_OR_RETURN(const std::vector<Event>* events, Block(i));
    for (const Event& event : *events) {
      ++stats_.events_scanned;
      if (event.IsDataAccess() && event.id.pid == pid &&
          event.id.file_id == file_id && event.size > 0) {
        ranges.Add(event.offset, event.offset + event.size);
      }
    }
  }
  return ranges;
}

StatusOr<std::map<int64_t, int64_t>> ProvenanceQuery::PerRunCoverage(
    int64_t file_id) {
  ++stats_.queries;
  std::map<int64_t, IntervalSet> per_run;
  const std::vector<Kel2BlockInfo>& blocks = reader_->blocks();
  for (size_t i = 0; i < blocks.size(); ++i) {
    ++stats_.blocks_considered;
    if (!blocks[i].MayContainFile(file_id) ||
        blocks[i].min_offset > blocks[i].max_end) {
      ++stats_.blocks_skipped;
      continue;
    }
    KONDO_ASSIGN_OR_RETURN(const std::vector<Event>* events, Block(i));
    for (const Event& event : *events) {
      ++stats_.events_scanned;
      if (event.IsDataAccess() && event.id.file_id == file_id &&
          event.size > 0) {
        per_run[event.id.pid].Add(event.offset, event.offset + event.size);
      }
    }
  }
  std::map<int64_t, int64_t> coverage;
  for (const auto& [pid, ranges] : per_run) {
    coverage[pid] = ranges.TotalLength();
  }
  return coverage;
}

StatusOr<std::vector<int64_t>> ProvenanceQuery::CoverageHistogram(
    int64_t file_id, int64_t bucket_bytes) {
  if (bucket_bytes <= 0) {
    return InvalidArgumentError(
        StrCat("bucket_bytes must be positive, got ", bucket_bytes));
  }
  KONDO_ASSIGN_OR_RETURN(IntervalSet ranges, AccessedRanges(file_id));
  std::vector<int64_t> histogram;
  for (const Interval& interval : ranges.ToIntervals()) {
    if (interval.begin < 0) {
      return InvalidArgumentError(
          StrCat("negative access offset ", interval.begin,
                 " cannot be bucketed"));
    }
    const size_t last_bucket =
        static_cast<size_t>((interval.end - 1) / bucket_bytes);
    if (histogram.size() <= last_bucket) {
      histogram.resize(last_bucket + 1, 0);
    }
    for (size_t b = static_cast<size_t>(interval.begin / bucket_bytes);
         b <= last_bucket; ++b) {
      const int64_t bucket_begin = static_cast<int64_t>(b) * bucket_bytes;
      const int64_t bucket_end = bucket_begin + bucket_bytes;
      histogram[b] += std::min(interval.end, bucket_end) -
                      std::max(interval.begin, bucket_begin);
    }
  }
  return histogram;
}

StatusOr<IndexSet> ProvenanceQuery::AccessedIndices(
    int64_t file_id, const OffsetMapper& mapper) {
  KONDO_ASSIGN_OR_RETURN(IntervalSet ranges, AccessedRanges(file_id));
  return mapper.IndicesForRanges(ranges);
}

}  // namespace kondo
