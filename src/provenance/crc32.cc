#include "provenance/crc32.h"

#include <array>

namespace kondo {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
  }
  return ~crc;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace kondo
