#ifndef KONDO_PROVENANCE_KEL2_READER_H_
#define KONDO_PROVENANCE_KEL2_READER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "audit/event.h"
#include "audit/event_log.h"
#include "common/status.h"
#include "common/statusor.h"
#include "provenance/kel2_format.h"

namespace kondo {

/// Reader for the KEL2 block-compressed lineage store. `Open` scans only
/// the 64-byte block descriptors (seeking past every payload), so a store
/// of millions of events is indexed by reading a few kilobytes; payloads
/// are decoded lazily per block, which is what lets the query engine skip
/// blocks that cannot match.
///
/// Crash semantics: a truncated trailing descriptor or payload (torn
/// write) is silently dropped at Open, mirroring KEL1. A structurally
/// complete block whose payload fails its CRC is reported as
/// `kDataLoss` by DecodeBlock/ReadAll — corruption is detected, never
/// silently mis-decoded.
class Kel2Reader {
 public:
  static StatusOr<Kel2Reader> Open(const std::string& path);

  Kel2Reader(Kel2Reader&& other) noexcept;
  Kel2Reader& operator=(Kel2Reader&& other) noexcept;
  ~Kel2Reader();

  /// Block descriptors in file order (the torn tail, if any, excluded).
  const std::vector<Kel2BlockInfo>& blocks() const { return blocks_; }
  int64_t NumBlocks() const { return static_cast<int64_t>(blocks_.size()); }

  /// Total events across all intact blocks.
  int64_t NumEvents() const { return num_events_; }

  /// Descriptor bytes + payload bytes of the intact blocks (excludes the
  /// 8-byte file header).
  int64_t BlockBytes() const { return block_bytes_; }

  /// Decodes one block: reads its payload, verifies the CRC, and expands
  /// the columnar sections back into events.
  StatusOr<std::vector<Event>> DecodeBlock(size_t index) const;

  /// Decodes every block in order.
  StatusOr<std::vector<Event>> ReadAll() const;

  const std::string& path() const { return path_; }

 private:
  Kel2Reader(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<Kel2BlockInfo> blocks_;
  int64_t num_events_ = 0;
  int64_t block_bytes_ = 0;
};

/// Decodes a KEL2 columnar payload (CRC already verified) into events.
/// Returns kDataLoss when the payload does not decode to exactly
/// `event_count` events.
StatusOr<std::vector<Event>> DecodeKel2Payload(const char* payload,
                                               size_t size,
                                               uint32_t event_count);

/// True when the file at `path` starts with the KEL2 magic.
bool IsKel2Store(const std::string& path);

/// Reads an event store of either generation, dispatching on the magic:
/// "KEL1" decodes the fixed-width stream, "KEL2" the block-compressed one.
/// This is what makes KEL2 a drop-in durable backend for EventLog replay.
StatusOr<std::vector<Event>> ReadLineageStore(const std::string& path);

/// Replays either store format into `log`.
Status ReplayLineageStore(const std::string& path, EventLog* log);

}  // namespace kondo

#endif  // KONDO_PROVENANCE_KEL2_READER_H_
