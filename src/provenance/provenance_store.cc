#include "provenance/provenance_store.h"

#include <utility>

#include "common/strings.h"

namespace kondo {

ProvenanceStore::ProvenanceStore(Kel2Reader reader)
    : path_(reader.path()),
      num_blocks_(reader.NumBlocks()),
      num_events_(reader.NumEvents()),
      reader_(std::move(reader)),
      query_(&reader_) {}

StatusOr<std::unique_ptr<ProvenanceStore>> ProvenanceStore::Open(
    const std::string& path) {
  if (!IsKel2Store(path)) {
    return InvalidArgumentError(
        StrCat("not a KEL2 store (in-situ queries need block descriptors): ",
               path));
  }
  KONDO_ASSIGN_OR_RETURN(Kel2Reader reader, Kel2Reader::Open(path));
  return std::unique_ptr<ProvenanceStore>(
      new ProvenanceStore(std::move(reader)));
}

namespace {

ProvenanceQueryStats StatsDelta(const ProvenanceQueryStats& before,
                                const ProvenanceQueryStats& after) {
  ProvenanceQueryStats delta;
  delta.queries = after.queries - before.queries;
  delta.blocks_considered = after.blocks_considered - before.blocks_considered;
  delta.blocks_skipped = after.blocks_skipped - before.blocks_skipped;
  delta.blocks_decoded = after.blocks_decoded - before.blocks_decoded;
  delta.block_cache_hits = after.block_cache_hits - before.block_cache_hits;
  delta.events_scanned = after.events_scanned - before.events_scanned;
  return delta;
}

}  // namespace

StatusOr<std::vector<Event>> ProvenanceStore::EventsOverlapping(
    int64_t file_id, int64_t begin, int64_t end,
    ProvenanceQueryStats* query_stats) {
  MutexLock lock(mu_);
  const ProvenanceQueryStats before = query_.stats();
  StatusOr<std::vector<Event>> events =
      query_.EventsOverlapping(file_id, begin, end);
  if (query_stats != nullptr) {
    *query_stats = StatsDelta(before, query_.stats());
  }
  return events;
}

StatusOr<std::vector<int64_t>> ProvenanceStore::RunsTouching(int64_t file_id,
                                                             int64_t begin,
                                                             int64_t end) {
  MutexLock lock(mu_);
  return query_.RunsTouching(file_id, begin, end);
}

ProvenanceQueryStats ProvenanceStore::QueryStats() const {
  MutexLock lock(mu_);
  return query_.stats();
}

}  // namespace kondo
