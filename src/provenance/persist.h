#ifndef KONDO_PROVENANCE_PERSIST_H_
#define KONDO_PROVENANCE_PERSIST_H_

#include <cstdint>
#include <functional>
#include <string>

#include "audit/auditor.h"
#include "audit/event_log.h"
#include "common/status.h"
#include "common/statusor.h"
#include "provenance/kel2_writer.h"

namespace kondo {

/// Builds an AuditPersistFn that writes the audited run's events to a KEL2
/// store at `path` — plug it into `RunAudited` to make the
/// block-compressed store the durable backend of the auditor.
AuditPersistFn MakeKel2Persister(std::string path,
                                 Kel2WriterOptions options = {});

/// KEL1-compatible persister (the original 40-byte-per-record store), for
/// callers that want the uncompressed format. `env == nullptr` selects the
/// real filesystem.
AuditPersistFn MakeKel1Persister(std::string path, Env* env = nullptr);

/// Wraps `persist` so concurrent invocations serialize on an internal
/// mutex instead of interleaving writes to the store. Use when audited
/// runs race on one persister outside the campaign executor's ordered
/// ResultCollector channel (see the single-writer contract on
/// AuditPersistFn in src/audit/auditor.h). Serialization makes concurrent
/// persistence *safe*; it does not make the run order deterministic — only
/// the collector channel guarantees that.
AuditPersistFn MakeSerializedPersister(AuditPersistFn persist);

/// A campaign-scoped lineage sink: one open KEL2 store accumulating every
/// persisted run, in persist-call order. This is the store end of the
/// parallel campaign's single-writer channel — the ResultCollector invokes
/// `persister()` once per consumed debloat test, in candidate order, so the
/// resulting store is byte-identical to a serial (`jobs=1`) campaign.
///
/// Not thread-safe (see the AuditPersistFn single-writer contract in
/// src/audit/auditor.h); wrap `persister()` in MakeSerializedPersister for
/// unordered concurrent use. `Close()` seals the store; a sink destroyed
/// without Close keeps KEL2's at-most-one-torn-tail guarantee.
class CampaignLineageSink {
 public:
  static StatusOr<CampaignLineageSink> Create(const std::string& path,
                                              Kel2WriterOptions options = {});

  /// A persister appending to this sink's store. The returned function
  /// shares ownership of the writer and stays valid after the sink object
  /// goes out of scope (though only Close makes the tail block durable).
  AuditPersistFn persister() const;

  /// Runs persisted so far.
  int64_t runs() const { return *runs_; }

  /// Seals the buffered tail block and closes the store. Idempotent.
  Status Close();

 private:
  explicit CampaignLineageSink(std::shared_ptr<Kel2Writer> writer)
      : writer_(std::move(writer)), runs_(std::make_shared<int64_t>(0)) {}

  std::shared_ptr<Kel2Writer> writer_;
  std::shared_ptr<int64_t> runs_;
};

/// Outcome of compacting a KEL1 store into KEL2.
struct CompactStats {
  int64_t events = 0;
  int64_t blocks = 0;
  int64_t input_bytes = 0;
  int64_t output_bytes = 0;

  double Ratio() const {
    return output_bytes > 0
               ? static_cast<double>(input_bytes) /
                     static_cast<double>(output_bytes)
               : 0.0;
  }
};

/// Rewrites the KEL1 (or KEL2) store at `input_path` as a KEL2 store at
/// `output_path`, preserving event order byte-exactly.
StatusOr<CompactStats> CompactLineageStore(const std::string& input_path,
                                           const std::string& output_path,
                                           Kel2WriterOptions options = {});

/// Size of `path` in bytes (kNotFound when missing).
StatusOr<int64_t> FileSizeBytes(const std::string& path);

}  // namespace kondo

#endif  // KONDO_PROVENANCE_PERSIST_H_
