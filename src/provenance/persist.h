#ifndef KONDO_PROVENANCE_PERSIST_H_
#define KONDO_PROVENANCE_PERSIST_H_

#include <cstdint>
#include <functional>
#include <string>

#include "audit/auditor.h"
#include "audit/event_log.h"
#include "common/status.h"
#include "common/statusor.h"
#include "provenance/kel2_writer.h"

namespace kondo {

/// Builds an AuditPersistFn that writes the audited run's events to a KEL2
/// store at `path` — plug it into `RunAudited` to make the
/// block-compressed store the durable backend of the auditor.
AuditPersistFn MakeKel2Persister(std::string path,
                                 Kel2WriterOptions options = {});

/// KEL1-compatible persister (the original 40-byte-per-record store), for
/// callers that want the uncompressed format.
AuditPersistFn MakeKel1Persister(std::string path);

/// Outcome of compacting a KEL1 store into KEL2.
struct CompactStats {
  int64_t events = 0;
  int64_t blocks = 0;
  int64_t input_bytes = 0;
  int64_t output_bytes = 0;

  double Ratio() const {
    return output_bytes > 0
               ? static_cast<double>(input_bytes) /
                     static_cast<double>(output_bytes)
               : 0.0;
  }
};

/// Rewrites the KEL1 (or KEL2) store at `input_path` as a KEL2 store at
/// `output_path`, preserving event order byte-exactly.
StatusOr<CompactStats> CompactLineageStore(const std::string& input_path,
                                           const std::string& output_path,
                                           Kel2WriterOptions options = {});

/// Size of `path` in bytes (kNotFound when missing).
StatusOr<int64_t> FileSizeBytes(const std::string& path);

}  // namespace kondo

#endif  // KONDO_PROVENANCE_PERSIST_H_
