#ifndef KONDO_PROVENANCE_CRC32_H_
#define KONDO_PROVENANCE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace kondo {

/// CRC-32 (IEEE 802.3, the zlib polynomial 0xEDB88320), table-driven.
/// Every KEL2 block payload carries its CRC so a flipped bit is detected
/// instead of silently mis-decoding lineage. Self-contained: the container
/// image may not ship zlib.
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: `crc` is the value returned by a previous call (start
/// from 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace kondo

#endif  // KONDO_PROVENANCE_CRC32_H_
