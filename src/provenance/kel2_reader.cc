#include "provenance/kel2_reader.h"

#include <cstring>

#include "audit/event_store.h"
#include "common/strings.h"
#include "provenance/crc32.h"
#include "provenance/varint.h"

namespace kondo {
namespace {

int64_t ReadI64(const char* buf) {
  int64_t value;
  std::memcpy(&value, buf, 8);
  return value;
}

uint32_t ReadU32(const char* buf) {
  uint32_t value;
  std::memcpy(&value, buf, 4);
  return value;
}

/// Decodes one delta + zigzag varint column of `count` values.
bool DecodeDeltaColumn(VarintReader* in, uint32_t count,
                       std::vector<int64_t>* out) {
  out->clear();
  out->reserve(count);
  int64_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    int64_t delta;
    if (!in->NextSigned(&delta)) {
      return false;
    }
    prev += delta;
    out->push_back(prev);
  }
  return true;
}

Kel2BlockInfo ParseDescriptor(const char* buf) {
  Kel2BlockInfo info;
  info.payload_bytes = ReadU32(buf);
  info.crc32 = ReadU32(buf + 4);
  info.event_count = ReadU32(buf + 8);
  info.min_offset = ReadI64(buf + 16);
  info.max_end = ReadI64(buf + 24);
  info.min_pid = ReadI64(buf + 32);
  info.max_pid = ReadI64(buf + 40);
  info.min_file_id = ReadI64(buf + 48);
  info.max_file_id = ReadI64(buf + 56);
  return info;
}

}  // namespace

StatusOr<std::vector<Event>> DecodeKel2Payload(const char* payload,
                                               size_t size,
                                               uint32_t event_count) {
  VarintReader in(payload, size);
  std::vector<int64_t> pids, file_ids;
  if (!DecodeDeltaColumn(&in, event_count, &pids) ||
      !DecodeDeltaColumn(&in, event_count, &file_ids)) {
    return DataLossError("KEL2 payload truncated in id columns");
  }

  std::vector<EventType> types;
  types.reserve(event_count);
  while (types.size() < event_count) {
    uint8_t type_byte;
    uint64_t run;
    if (!in.NextByte(&type_byte) || !in.Next(&run) || run == 0 ||
        run > event_count - types.size()) {
      return DataLossError("KEL2 type column mis-encoded");
    }
    types.insert(types.end(), static_cast<size_t>(run),
                 static_cast<EventType>(type_byte));
  }

  std::vector<int64_t> offsets;
  if (!DecodeDeltaColumn(&in, event_count, &offsets)) {
    return DataLossError("KEL2 payload truncated in offset column");
  }

  std::vector<int64_t> sizes;
  sizes.reserve(event_count);
  while (sizes.size() < event_count) {
    int64_t value;
    uint64_t run;
    if (!in.NextSigned(&value) || !in.Next(&run) || run == 0 ||
        run > event_count - sizes.size()) {
      return DataLossError("KEL2 size column mis-encoded");
    }
    sizes.insert(sizes.end(), static_cast<size_t>(run), value);
  }
  if (!in.AtEnd()) {
    return DataLossError(
        StrCat("KEL2 payload has ", size - in.position(),
               " trailing bytes after ", event_count, " events"));
  }

  std::vector<Event> events(event_count);
  for (uint32_t i = 0; i < event_count; ++i) {
    events[i].id.pid = pids[i];
    events[i].id.file_id = file_ids[i];
    events[i].type = types[i];
    events[i].offset = offsets[i];
    events[i].size = sizes[i];
  }
  return events;
}

StatusOr<Kel2Reader> Kel2Reader::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open KEL2 store: " + path);
  }
  char header[kKel2HeaderBytes];
  if (std::fread(header, 1, kKel2HeaderBytes, file) != kKel2HeaderBytes ||
      std::memcmp(header, kKel2Magic, 4) != 0) {
    std::fclose(file);
    return DataLossError("not a KEL2 event store: " + path);
  }

  Kel2Reader reader(file, path);
  char descriptor[kKel2DescriptorBytes];
  int64_t pos = kKel2HeaderBytes;
  while (true) {
    const size_t n = std::fread(descriptor, 1, kKel2DescriptorBytes, file);
    if (n < kKel2DescriptorBytes) {
      break;  // Clean EOF or torn trailing descriptor: drop.
    }
    Kel2BlockInfo info = ParseDescriptor(descriptor);
    if (info.payload_bytes > kKel2MaxPayloadBytes) {
      std::fclose(file);
      reader.file_ = nullptr;
      return DataLossError(StrCat("KEL2 block at offset ", pos,
                                  " declares implausible payload of ",
                                  info.payload_bytes, " bytes: ", path));
    }
    info.payload_pos = pos + static_cast<int64_t>(kKel2DescriptorBytes);
    // A torn write can leave the descriptor intact but the payload short:
    // probe the payload end before accepting the block.
    if (std::fseek(file, info.payload_pos +
                             static_cast<int64_t>(info.payload_bytes) - 1,
                   SEEK_SET) != 0 ||
        std::fgetc(file) == EOF) {
      break;  // Torn trailing payload: drop the block.
    }
    reader.blocks_.push_back(info);
    reader.num_events_ += info.event_count;
    reader.block_bytes_ += static_cast<int64_t>(kKel2DescriptorBytes) +
                           static_cast<int64_t>(info.payload_bytes);
    pos = info.payload_pos + static_cast<int64_t>(info.payload_bytes);
  }
  return reader;
}

Kel2Reader::Kel2Reader(Kel2Reader&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      blocks_(std::move(other.blocks_)),
      num_events_(other.num_events_),
      block_bytes_(other.block_bytes_) {
  other.file_ = nullptr;
}

Kel2Reader& Kel2Reader::operator=(Kel2Reader&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    file_ = other.file_;
    path_ = std::move(other.path_);
    blocks_ = std::move(other.blocks_);
    num_events_ = other.num_events_;
    block_bytes_ = other.block_bytes_;
    other.file_ = nullptr;
  }
  return *this;
}

Kel2Reader::~Kel2Reader() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

StatusOr<std::vector<Event>> Kel2Reader::DecodeBlock(size_t index) const {
  if (index >= blocks_.size()) {
    return OutOfRangeError(StrCat("block ", index, " of ", blocks_.size()));
  }
  const Kel2BlockInfo& info = blocks_[index];
  std::string payload(info.payload_bytes, '\0');
  if (std::fseek(file_, info.payload_pos, SEEK_SET) != 0 ||
      std::fread(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return DataLossError(StrCat("cannot read KEL2 block ", index, " of ",
                                path_));
  }
  const uint32_t crc = Crc32(payload.data(), payload.size());
  if (crc != info.crc32) {
    return DataLossError(StrCat("KEL2 block ", index,
                                " checksum mismatch (stored ", info.crc32,
                                ", computed ", crc, "): ", path_));
  }
  return DecodeKel2Payload(payload.data(), payload.size(),
                           info.event_count);
}

StatusOr<std::vector<Event>> Kel2Reader::ReadAll() const {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(num_events_));
  for (size_t i = 0; i < blocks_.size(); ++i) {
    KONDO_ASSIGN_OR_RETURN(std::vector<Event> block, DecodeBlock(i));
    events.insert(events.end(), block.begin(), block.end());
  }
  return events;
}

bool IsKel2Store(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return false;
  }
  char magic[4];
  const bool is_kel2 = std::fread(magic, 1, 4, file) == 4 &&
                       std::memcmp(magic, kKel2Magic, 4) == 0;
  std::fclose(file);
  return is_kel2;
}

StatusOr<std::vector<Event>> ReadLineageStore(const std::string& path) {
  if (IsKel2Store(path)) {
    KONDO_ASSIGN_OR_RETURN(Kel2Reader reader, Kel2Reader::Open(path));
    return reader.ReadAll();
  }
  return ReadEventStore(path);
}

Status ReplayLineageStore(const std::string& path, EventLog* log) {
  KONDO_ASSIGN_OR_RETURN(std::vector<Event> events, ReadLineageStore(path));
  for (const Event& event : events) {
    log->Record(event);
  }
  return OkStatus();
}

}  // namespace kondo
