#ifndef KONDO_PROVENANCE_KEL2_FORMAT_H_
#define KONDO_PROVENANCE_KEL2_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace kondo {

/// KEL2 — block-compressed Kondo Event Log (docs/FORMATS.md).
///
///   magic "KEL2" | u32 reserved | block*
///
/// Each block is a fixed 64-byte descriptor followed by `payload_bytes` of
/// columnar payload:
///
///   offset size field
///   0      4    u32 payload_bytes
///   4      4    u32 crc32 of the payload (IEEE, zlib polynomial)
///   8      4    u32 event_count
///   12     4    u32 reserved (0)
///   16     8    i64 min_offset   ┐ union of [offset, offset+size) over the
///   24     8    i64 max_end      ┘ block's *data-access* events; when the
///                                  block has none, min_offset > max_end
///   32     8    i64 min_pid      ┐ over all events
///   40     8    i64 max_pid      ┘
///   48     8    i64 min_file_id  ┐ over all events
///   56     8    i64 max_file_id  ┘
///
/// The descriptor lets a reader decide from 64 bytes whether a block can
/// possibly satisfy an interval query and seek past it otherwise — the
/// in-situ property of Zhao & Krishnan's array-lineage store. The payload
/// encodes the events columnar:
///
///   pids      delta + zigzag varint, one per event
///   file_ids  delta + zigzag varint, one per event
///   types     run-length pairs (u8 type, varint run) summing to event_count
///   offsets   delta + zigzag varint, one per event
///   sizes     run-length pairs (zigzag varint value, varint run)
///
/// A torn trailing block (crash mid-append: truncated descriptor or
/// payload) is dropped on read, mirroring KEL1's crash semantics; a
/// *complete* block whose payload fails its CRC is reported as data loss.
constexpr char kKel2Magic[4] = {'K', 'E', 'L', '2'};
constexpr size_t kKel2HeaderBytes = 8;
constexpr size_t kKel2DescriptorBytes = 64;

/// Hard ceiling on a block payload; a descriptor declaring more is treated
/// as corruption rather than an allocation request.
constexpr uint32_t kKel2MaxPayloadBytes = 1u << 28;

/// Decoded block descriptor plus the block's position within the file.
struct Kel2BlockInfo {
  int64_t payload_pos = 0;  // Absolute file offset of the payload.
  uint32_t payload_bytes = 0;
  uint32_t crc32 = 0;
  uint32_t event_count = 0;
  int64_t min_offset = 0;  // Data-access byte range; min > max when none.
  int64_t max_end = -1;
  int64_t min_pid = 0;
  int64_t max_pid = 0;
  int64_t min_file_id = 0;
  int64_t max_file_id = 0;

  /// True when the block may contain a data access to `file_id`
  /// overlapping [begin, end) — the skip predicate of the query engine.
  bool MayMatch(int64_t file_id, int64_t begin, int64_t end) const {
    return file_id >= min_file_id && file_id <= max_file_id &&
           min_offset < end && begin < max_end;
  }

  /// True when the block may contain any event of `file_id`.
  bool MayContainFile(int64_t file_id) const {
    return file_id >= min_file_id && file_id <= max_file_id;
  }
};

}  // namespace kondo

#endif  // KONDO_PROVENANCE_KEL2_FORMAT_H_
