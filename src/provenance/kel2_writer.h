#ifndef KONDO_PROVENANCE_KEL2_WRITER_H_
#define KONDO_PROVENANCE_KEL2_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "audit/event.h"
#include "audit/event_log.h"
#include "common/env.h"
#include "common/status.h"
#include "common/statusor.h"
#include "provenance/kel2_format.h"

namespace kondo {

struct Kel2WriterOptions {
  /// Events buffered per block before it is sealed. Larger blocks compress
  /// better; smaller blocks give the query engine finer skip granularity.
  int64_t events_per_block = 512;

  /// Filesystem to write through; nullptr selects Env::Default(). Tests
  /// thread a FaultInjectingEnv through here (it rides inside the options
  /// so every persister factory picks it up without signature churn).
  Env* env = nullptr;
};

/// Streaming writer for the KEL2 block-compressed lineage store. Events are
/// buffered and sealed into checksummed columnar blocks; a crash loses at
/// most the unsealed buffer plus a torn trailing block, which the reader
/// drops — the same at-most-one-tail guarantee as KEL1.
///
/// Durability: blocks accumulate in `path + ".tmp"`; Close() (also run by
/// the destructor) seals the tail, fsyncs, and renames the store into
/// place, so a reader observes either the previous artifact or the new
/// complete one (see docs/ROBUSTNESS.md).
class Kel2Writer {
 public:
  static StatusOr<Kel2Writer> Create(const std::string& path,
                                     const Kel2WriterOptions& options = {});

  Kel2Writer(Kel2Writer&& other) noexcept;
  Kel2Writer& operator=(Kel2Writer&& other) noexcept;
  ~Kel2Writer();

  /// Buffers one event; seals a block when the buffer reaches
  /// `events_per_block`.
  Status Append(const Event& event);

  /// Appends every event of `log` in arrival order.
  Status AppendAll(const EventLog& log);

  /// Seals the buffered partial block (if any) and flushes the stream (to
  /// the uncommitted tmp file — only Close publishes the artifact).
  Status Flush();

  /// Seals the tail, fsyncs, and atomically publishes the store; further
  /// Appends fail. Idempotent.
  Status Close();

  int64_t events_written() const { return events_written_; }
  int64_t blocks_written() const { return blocks_written_; }

  /// Bytes appended to the store so far (file header, descriptors, and
  /// payloads). Valid after Close() too — the serve stats verb and
  /// bench_serve report artifact sizes from here instead of stat()-ing
  /// files mid-serve.
  int64_t bytes_written() const { return file_.bytes_appended(); }

 private:
  Kel2Writer(AtomicFile file, Kel2WriterOptions options)
      : file_(std::move(file)), options_(options) {
    buffer_.reserve(static_cast<size_t>(options_.events_per_block));
  }

  /// Encodes and writes the buffered events as one block.
  Status SealBlock();

  AtomicFile file_;
  Kel2WriterOptions options_;
  std::vector<Event> buffer_;
  int64_t events_written_ = 0;
  int64_t blocks_written_ = 0;
};

/// Encodes `events` into one block (descriptor + payload) appended to
/// `out`. Exposed for the reader's tests and the compactor.
void EncodeKel2Block(const std::vector<Event>& events, std::string* out);

}  // namespace kondo

#endif  // KONDO_PROVENANCE_KEL2_WRITER_H_
