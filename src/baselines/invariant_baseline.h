#ifndef KONDO_BASELINES_INVARIANT_BASELINE_H_
#define KONDO_BASELINES_INVARIANT_BASELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/index_set.h"

namespace kondo {

/// A conjunctive invariant-inference baseline in the style of
/// Daikon/DIG/LPGen (paper §VII, "Invariant inference"): from the observed
/// access points it infers the tightest conjunction of octagon-domain
/// constraints
///
///     lo_d <= x_d <= hi_d                       (interval bounds)
///     lo_{d,e} <= x_d - x_e <= hi_{d,e}         (difference bounds)
///     lo'_{d,e} <= x_d + x_e <= hi'_{d,e}       (sum bounds)
///
/// over the index subscripts — "an invariant involving the array access
/// subscripts". Being conjunctive, the inferred region is one convex
/// octagon: it cannot express the disjunctive (multi-region, holed)
/// subsets Kondo's hull set carves, which is precisely the limitation the
/// paper cites for these tools.
class OctagonInvariant {
 public:
  /// Infers the invariant from observed points. Requires a non-empty set.
  static OctagonInvariant Infer(const IndexSet& points);

  int rank() const { return rank_; }

  /// True when `index` satisfies every inferred constraint.
  bool Satisfies(const Index& index) const;

  /// All integer indices of `shape` satisfying the invariant.
  IndexSet Rasterize(const Shape& shape) const;

  /// Human-readable constraint list, e.g. "0 <= x0 <= 9".
  std::string ToString() const;

 private:
  OctagonInvariant() = default;

  struct Bound {
    int64_t lo = 0;
    int64_t hi = 0;
  };

  int rank_ = 0;
  std::vector<Bound> interval_;  // Per dimension.
  std::vector<Bound> diff_;      // Per (d, e) pair, d < e: x_d - x_e.
  std::vector<Bound> sum_;       // Per (d, e) pair, d < e: x_d + x_e.
};

}  // namespace kondo

#endif  // KONDO_BASELINES_INVARIANT_BASELINE_H_
