#ifndef KONDO_BASELINES_AFL_FUZZER_H_
#define KONDO_BASELINES_AFL_FUZZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "array/index_set.h"
#include "common/rng.h"
#include "workloads/program.h"

namespace kondo {

/// Configuration of the AFL baseline (Section V-C). The paper retargets AFL
/// from code coverage to index coverage by inserting one `if (i,j)==(x,y)`
/// check per array index next to every read; the branch-coverage signal then
/// *is* the accessed-index set, which is what this simulation feeds back.
struct AflConfig {
  /// Wall-clock budget in seconds (0 = unlimited).
  double max_seconds = 1.0;
  /// Maximum executions (0 = unlimited).
  int64_t max_execs = 0;
  /// Simulated per-execution cost in microseconds, busy-waited: fork-server
  /// spawn plus instrumentation bookkeeping. Real AFL sustains on the order
  /// of 10^3..10^4 execs/s on small targets; the in-process call here would
  /// otherwise be unrealistically cheap ("AFL has additional book-keeping
  /// operations that results in it taking more time").
  int64_t exec_overhead_micros = 100;
  /// Havoc stacking: each mutant applies 1..max_stacked byte-level ops.
  int max_stacked = 16;
  uint64_t rng_seed = 1;
};

/// Result of an AFL campaign. Like BF it reports raw covered indices, so
/// precision is 1 by construction.
struct AflResult {
  IndexSet coverage;
  int64_t execs = 0;
  int64_t valid_execs = 0;   // Inputs that parsed into m integer arguments.
  int64_t queue_size = 0;    // Coverage-increasing inputs retained.
  double elapsed_seconds = 0.0;
};

/// A byte-level coverage-guided fuzzer in the style of AFL's havoc stage.
///
/// Inputs are raw byte strings parsed as whitespace-separated decimal
/// integers (the program's argv). Mutations are AFL's havoc repertoire —
/// bit flips, interesting-value and arithmetic byte ops, insert/delete/
/// duplicate, and splicing of two queue entries. An input joins the queue
/// iff it covers a new array index. The characteristic AFL weaknesses the
/// paper observes fall out naturally: most byte mutations yield unparsable
/// or duplicate integers ("mutation of input other than integers and
/// repetition of input, which wastes time").
class AflFuzzer {
 public:
  AflFuzzer(const Program& program, AflConfig config);

  /// Runs the campaign until the budget expires.
  AflResult Run();

  /// Parses `input` into a parameter vector of the program's arity.
  /// Exposed for tests. Returns nullopt for malformed input.
  std::optional<ParamValue> ParseInput(const std::string& input) const;

 private:
  /// One havoc mutation of `input` (in place).
  void MutateOnce(std::string* input);

  /// Renders a parameter value as an argv-style input string.
  std::string FormatInput(const ParamValue& v) const;

  const Program& program_;
  AflConfig config_;
  Rng rng_;
  std::vector<std::string> queue_;
};

}  // namespace kondo

#endif  // KONDO_BASELINES_AFL_FUZZER_H_
