#ifndef KONDO_BASELINES_BRUTE_FORCE_H_
#define KONDO_BASELINES_BRUTE_FORCE_H_

#include <cstdint>

#include "array/index_set.h"
#include "workloads/program.h"

namespace kondo {

/// Configuration of the brute-force (BF) baseline of Section V-C.
struct BruteForceConfig {
  /// Wall-clock budget in seconds (0 = unlimited).
  double max_seconds = 0.0;
  /// Maximum number of executions (0 = unlimited).
  int64_t max_runs = 0;
  /// Visit valuations in a random order instead of lexicographic. Random
  /// order makes partial coverage spatially uniform — the fairer variant
  /// under a time budget — and is the default.
  bool shuffled = true;
  uint64_t rng_seed = 1;
  /// Simulated per-execution cost in microseconds (busy-waited): the
  /// process-spawn cost every real brute-force run pays. Time-budget
  /// comparisons charge the same cost to every tool (see bench/README
  /// notes in DESIGN.md).
  int64_t exec_overhead_micros = 0;
};

/// Result of a brute-force campaign. BF reports raw accessed indices (no
/// carving), so its precision is 1 by construction; its recall under a
/// budget is the enumerated fraction's coverage of I_Θ.
struct BruteForceResult {
  IndexSet discovered;
  int64_t runs = 0;
  double elapsed_seconds = 0.0;
  /// True when every valuation of Θ was executed (recall is then exactly 1).
  bool exhausted = false;
};

/// Executes the program on valuations of Θ until the budget expires or Θ is
/// exhausted, recording the accessed indices. Requires an all-integer Θ.
BruteForceResult RunBruteForce(const Program& program,
                               const BruteForceConfig& config);

}  // namespace kondo

#endif  // KONDO_BASELINES_BRUTE_FORCE_H_
