#include "baselines/brute_force.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace kondo {
namespace {

/// Decodes valuation number `ordinal` (mixed-radix over the integer grid).
ParamValue DecodeValuation(const ParamSpace& space, int64_t ordinal) {
  const int m = space.num_params();
  ParamValue v(static_cast<size_t>(m));
  for (int i = m - 1; i >= 0; --i) {
    const int64_t lo = static_cast<int64_t>(std::ceil(space.range(i).lo));
    const int64_t hi = static_cast<int64_t>(std::floor(space.range(i).hi));
    const int64_t cardinality = hi - lo + 1;
    v[static_cast<size_t>(i)] = static_cast<double>(lo + ordinal % cardinality);
    ordinal /= cardinality;
  }
  return v;
}

}  // namespace

BruteForceResult RunBruteForce(const Program& program,
                               const BruteForceConfig& config) {
  const ParamSpace& space = program.param_space();
  const double valuations_d = space.NumValuations();
  KONDO_CHECK(std::isfinite(valuations_d))
      << "BF requires an all-integer parameter space";
  const int64_t valuations = static_cast<int64_t>(valuations_d);

  BruteForceResult result;
  result.discovered = IndexSet(program.data_shape());
  Stopwatch stopwatch;

  // Shuffled order: a random permutation of ordinals (materialised; the
  // evaluated spaces are at most a few hundred thousand valuations).
  std::vector<int64_t> order;
  if (config.shuffled) {
    order.resize(static_cast<size_t>(valuations));
    for (int64_t i = 0; i < valuations; ++i) {
      order[static_cast<size_t>(i)] = i;
    }
    Rng rng(config.rng_seed);
    rng.Shuffle(order);
  }

  for (int64_t k = 0; k < valuations; ++k) {
    if (config.max_runs > 0 && result.runs >= config.max_runs) {
      break;
    }
    // Check the wall clock every few runs to keep overhead negligible.
    if (config.max_seconds > 0.0 && (k & 0xF) == 0 &&
        stopwatch.ElapsedSeconds() >= config.max_seconds) {
      break;
    }
    const int64_t ordinal =
        config.shuffled ? order[static_cast<size_t>(k)] : k;
    const ParamValue v = DecodeValuation(space, ordinal);
    BusyWaitMicros(config.exec_overhead_micros);
    program.Execute(
        v, [&result](const Index& index) { result.discovered.Insert(index); });
    ++result.runs;
  }

  result.exhausted = result.runs == valuations;
  result.elapsed_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace kondo
