#include "baselines/invariant_baseline.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace kondo {
namespace {

/// Pair slot for (d, e), d < e, within rank r.
size_t PairSlot(int d, int e, int rank) {
  // Slots in lexicographic order of (d, e).
  size_t slot = 0;
  for (int i = 0; i < d; ++i) {
    slot += static_cast<size_t>(rank - i - 1);
  }
  return slot + static_cast<size_t>(e - d - 1);
}

}  // namespace

OctagonInvariant OctagonInvariant::Infer(const IndexSet& points) {
  KONDO_CHECK(!points.empty());
  OctagonInvariant invariant;
  const int rank = points.shape().rank();
  invariant.rank_ = rank;

  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  invariant.interval_.assign(static_cast<size_t>(rank), Bound{kMax, kMin});
  const size_t pairs = static_cast<size_t>(rank * (rank - 1) / 2);
  invariant.diff_.assign(pairs, Bound{kMax, kMin});
  invariant.sum_.assign(pairs, Bound{kMax, kMin});

  points.ForEach([&invariant, rank](const Index& index) {
    for (int d = 0; d < rank; ++d) {
      Bound& b = invariant.interval_[static_cast<size_t>(d)];
      b.lo = std::min(b.lo, index[d]);
      b.hi = std::max(b.hi, index[d]);
      for (int e = d + 1; e < rank; ++e) {
        const size_t slot = PairSlot(d, e, rank);
        Bound& diff = invariant.diff_[slot];
        diff.lo = std::min(diff.lo, index[d] - index[e]);
        diff.hi = std::max(diff.hi, index[d] - index[e]);
        Bound& sum = invariant.sum_[slot];
        sum.lo = std::min(sum.lo, index[d] + index[e]);
        sum.hi = std::max(sum.hi, index[d] + index[e]);
      }
    }
  });
  return invariant;
}

bool OctagonInvariant::Satisfies(const Index& index) const {
  if (index.rank() != rank_) {
    return false;
  }
  for (int d = 0; d < rank_; ++d) {
    const Bound& b = interval_[static_cast<size_t>(d)];
    if (index[d] < b.lo || index[d] > b.hi) {
      return false;
    }
    for (int e = d + 1; e < rank_; ++e) {
      const size_t slot = PairSlot(d, e, rank_);
      const int64_t diff = index[d] - index[e];
      if (diff < diff_[slot].lo || diff > diff_[slot].hi) {
        return false;
      }
      const int64_t sum = index[d] + index[e];
      if (sum < sum_[slot].lo || sum > sum_[slot].hi) {
        return false;
      }
    }
  }
  return true;
}

IndexSet OctagonInvariant::Rasterize(const Shape& shape) const {
  IndexSet result(shape);
  KONDO_CHECK_EQ(shape.rank(), rank_);
  // Scan only the interval bounding box.
  std::vector<int64_t> lo(static_cast<size_t>(rank_)),
      hi(static_cast<size_t>(rank_)), cur(static_cast<size_t>(rank_));
  for (int d = 0; d < rank_; ++d) {
    lo[static_cast<size_t>(d)] =
        std::max<int64_t>(interval_[static_cast<size_t>(d)].lo, 0);
    hi[static_cast<size_t>(d)] = std::min<int64_t>(
        interval_[static_cast<size_t>(d)].hi, shape.dim(d) - 1);
    if (lo[static_cast<size_t>(d)] > hi[static_cast<size_t>(d)]) {
      return result;
    }
    cur[static_cast<size_t>(d)] = lo[static_cast<size_t>(d)];
  }
  Index index(rank_);
  while (true) {
    for (int d = 0; d < rank_; ++d) {
      index[d] = cur[static_cast<size_t>(d)];
    }
    if (Satisfies(index)) {
      result.Insert(index);
    }
    int d = rank_ - 1;
    while (d >= 0 &&
           ++cur[static_cast<size_t>(d)] > hi[static_cast<size_t>(d)]) {
      cur[static_cast<size_t>(d)] = lo[static_cast<size_t>(d)];
      --d;
    }
    if (d < 0) {
      break;
    }
  }
  return result;
}

std::string OctagonInvariant::ToString() const {
  std::ostringstream os;
  for (int d = 0; d < rank_; ++d) {
    const Bound& b = interval_[static_cast<size_t>(d)];
    os << b.lo << " <= x" << d << " <= " << b.hi << "\n";
  }
  for (int d = 0; d < rank_; ++d) {
    for (int e = d + 1; e < rank_; ++e) {
      const size_t slot = PairSlot(d, e, rank_);
      os << diff_[slot].lo << " <= x" << d << " - x" << e
         << " <= " << diff_[slot].hi << "\n";
      os << sum_[slot].lo << " <= x" << d << " + x" << e
         << " <= " << sum_[slot].hi << "\n";
    }
  }
  return os.str();
}

}  // namespace kondo
