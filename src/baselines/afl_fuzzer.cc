#include "baselines/afl_fuzzer.h"

#include <cmath>
#include <sstream>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace kondo {
namespace {

/// AFL's "interesting" byte values.
constexpr unsigned char kInterestingBytes[] = {0x00, 0x01, 0x7F, 0x80,
                                               0xFF, '0',  '9',  ' '};

}  // namespace

AflFuzzer::AflFuzzer(const Program& program, AflConfig config)
    : program_(program), config_(config), rng_(config.rng_seed) {}

std::optional<ParamValue> AflFuzzer::ParseInput(
    const std::string& input) const {
  const int m = program_.param_space().num_params();
  std::istringstream stream(input);
  ParamValue v;
  std::string token;
  while (stream >> token) {
    int64_t value = 0;
    if (!ParseInt64(token, &value)) {
      return std::nullopt;  // Non-integer garbage: the target rejects it.
    }
    v.push_back(static_cast<double>(value));
  }
  if (static_cast<int>(v.size()) != m) {
    return std::nullopt;
  }
  return v;
}

std::string AflFuzzer::FormatInput(const ParamValue& v) const {
  std::ostringstream os;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) {
      os << " ";
    }
    os << static_cast<int64_t>(std::llround(v[i]));
  }
  return os.str();
}

void AflFuzzer::MutateOnce(std::string* input) {
  if (input->empty()) {
    input->push_back('0');
  }
  const int op = static_cast<int>(rng_.UniformInt(0, 6));
  const size_t pos =
      static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(input->size()) - 1));
  switch (op) {
    case 0: {  // Bit flip.
      (*input)[pos] = static_cast<char>(
          (*input)[pos] ^ (1 << rng_.UniformInt(0, 7)));
      break;
    }
    case 1: {  // Interesting byte.
      (*input)[pos] = static_cast<char>(
          kInterestingBytes[rng_.UniformInt(0, 7)]);
      break;
    }
    case 2: {  // Arithmetic on a byte.
      (*input)[pos] = static_cast<char>(
          static_cast<unsigned char>((*input)[pos]) +
          static_cast<unsigned char>(rng_.UniformInt(-35, 35)));
      break;
    }
    case 3: {  // Random byte.
      (*input)[pos] = static_cast<char>(rng_.UniformInt(0, 255));
      break;
    }
    case 4: {  // Delete byte.
      input->erase(pos, 1);
      break;
    }
    case 5: {  // Insert random printable byte.
      input->insert(pos, 1, static_cast<char>(rng_.UniformInt(32, 126)));
      break;
    }
    case 6: {  // Duplicate a span.
      const size_t len = static_cast<size_t>(
          rng_.UniformInt(1, std::min<int64_t>(4, static_cast<int64_t>(
                                                      input->size() - pos))));
      input->insert(pos, input->substr(pos, len));
      break;
    }
  }
  // Keep inputs bounded, as AFL does.
  if (input->size() > 64) {
    input->resize(64);
  }
}

AflResult AflFuzzer::Run() {
  AflResult result;
  result.coverage = IndexSet(program_.data_shape());
  Stopwatch stopwatch;

  // Starting corpus: the corners and centre of Θ, like a user-provided seed.
  const ParamSpace& space = program_.param_space();
  ParamValue lo(static_cast<size_t>(space.num_params()));
  ParamValue mid(static_cast<size_t>(space.num_params()));
  for (int i = 0; i < space.num_params(); ++i) {
    lo[static_cast<size_t>(i)] = space.range(i).lo;
    mid[static_cast<size_t>(i)] = (space.range(i).lo + space.range(i).hi) / 2;
  }
  queue_ = {FormatInput(lo), FormatInput(mid)};

  auto execute = [this, &result](const std::string& input) {
    BusyWaitMicros(config_.exec_overhead_micros);
    ++result.execs;
    std::optional<ParamValue> v = ParseInput(input);
    if (!v.has_value()) {
      return false;
    }
    ++result.valid_execs;
    bool new_coverage = false;
    program_.Execute(*v, [&result, &new_coverage](const Index& index) {
      // The per-index "if" instrumentation: a newly true branch == a newly
      // covered index.
      if (!result.coverage.Contains(index)) {
        result.coverage.Insert(index);
        new_coverage = true;
      }
    });
    return new_coverage;
  };

  // Execute the starting corpus.
  for (const std::string& seed : queue_) {
    execute(seed);
  }

  while (true) {
    if (config_.max_seconds > 0.0 &&
        stopwatch.ElapsedSeconds() >= config_.max_seconds) {
      break;
    }
    if (config_.max_execs > 0 && result.execs >= config_.max_execs) {
      break;
    }
    // Pick a queue entry; occasionally splice two entries (AFL's splice
    // stage), then havoc-stack random byte mutations.
    std::string input =
        queue_[static_cast<size_t>(rng_.UniformInt(
            0, static_cast<int64_t>(queue_.size()) - 1))];
    if (queue_.size() >= 2 && rng_.Bernoulli(0.1)) {
      const std::string& other =
          queue_[static_cast<size_t>(rng_.UniformInt(
              0, static_cast<int64_t>(queue_.size()) - 1))];
      const size_t cut = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(input.size())));
      const size_t other_cut = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(other.size())));
      input = input.substr(0, cut) + other.substr(other_cut);
    }
    const int stacked =
        static_cast<int>(rng_.UniformInt(1, config_.max_stacked));
    for (int s = 0; s < stacked; ++s) {
      MutateOnce(&input);
    }
    if (execute(input)) {
      queue_.push_back(input);
    }
  }

  result.queue_size = static_cast<int64_t>(queue_.size());
  result.elapsed_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace kondo
