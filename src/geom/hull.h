#ifndef KONDO_GEOM_HULL_H_
#define KONDO_GEOM_HULL_H_

#include <cstdint>
#include <vector>

#include "array/index.h"
#include "array/index_set.h"
#include "array/shape.h"
#include "geom/convex2d.h"
#include "geom/convex3d.h"
#include "geom/vec.h"

namespace kondo {

/// A convex hull over points in an ambient space of rank 1..3, with full
/// degeneracy handling: the point set's affine rank r <= ambient rank is
/// detected and the hull is computed in r dimensions (a point, a segment, a
/// polygon, or a polytope). This is the geometric object the Carver
/// manipulates (Algorithm 2): hulls are built per cell, merged by recomputing
/// the hull of the union of vertex sets, and finally rasterised back to
/// integer index sets.
class Hull {
 public:
  /// Builds the hull of `points` (ambient rank `rank`, 1..3). Requires at
  /// least one point; duplicates are fine.
  static Hull Build(const std::vector<Vec3>& points, int rank);

  /// Convenience: hull of array indices.
  static Hull FromIndices(const std::vector<Index>& indices, int rank);

  int rank() const { return rank_; }
  /// Affine rank of the vertex set (0 = point, 1 = segment, ...).
  int affine_rank() const { return affine_rank_; }

  /// Hull vertices in ambient coordinates. Merging two hulls h1, h2 is
  /// Hull::Build(h1.vertices() ∪ h2.vertices(), rank), which equals the hull
  /// of the union of the original point sets (Section IV-B).
  const std::vector<Vec3>& vertices() const { return vertices_; }

  /// Centroid of the hull vertices — the paper's "hull center".
  const Vec3& centroid() const { return centroid_; }

  /// True when `p` is inside or on the hull (tolerance `tol`).
  bool Contains(const Vec3& p, double tol = kGeomTol) const;

  /// True when the integer index lies inside the hull.
  bool ContainsIndex(const Index& index, double tol = 1e-6) const;

  /// r-dimensional measure of the hull (length / area / volume; 0 for a
  /// point).
  double Measure() const;

  /// The paper's "hull boundary" distance: the minimum distance between
  /// this hull's vertices and `other`'s vertices.
  double MinVertexDistance(const Hull& other) const;

  /// Distance between the two hull centroids.
  double CentroidDistance(const Hull& other) const;

  /// Axis-aligned integer bounding box, inclusive: out parameters receive
  /// floor(min)-bounds and ceil(max)-bounds per dimension.
  void IntegerBounds(int64_t lo[3], int64_t hi[3]) const;

  /// Inserts into `out` every integer index of `shape` inside the hull.
  /// Only the hull's bounding box is scanned.
  void RasterizeInto(IndexSet* out, double tol = 1e-6) const;

  /// Number of integer points of `shape` inside the hull (without
  /// materialising them).
  int64_t CountIntegerPoints(const Shape& shape, double tol = 1e-6) const;

 private:
  Hull() = default;

  /// Projects `p` into local affine coordinates; `residual` (optional)
  /// receives the distance from `p` to the affine subspace.
  Vec3 ToLocal(const Vec3& p, double* residual) const;

  int rank_ = 0;
  int affine_rank_ = 0;
  std::vector<Vec3> vertices_;  // Ambient coordinates.
  Vec3 centroid_;

  // Affine frame: origin + orthonormal basis vectors (affine_rank_ of them).
  Vec3 origin_;
  Vec3 basis_[3];

  // Local-coordinate hull representations by affine rank.
  double seg_lo_ = 0.0, seg_hi_ = 0.0;       // rank 1: interval along basis 0.
  std::vector<Vec2> polygon_;                // rank 2: CCW polygon.
  std::vector<Vec3> local_points_;           // rank 3: hull vertex coords.
  Hull3D hull3d_;                            // rank 3: facets over local pts.
};

}  // namespace kondo

#endif  // KONDO_GEOM_HULL_H_
