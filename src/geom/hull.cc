#include "geom/hull.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kondo {
namespace {

/// Sort-and-dedupe for exact coordinate duplicates.
void DedupePoints(std::vector<Vec3>* points) {
  std::sort(points->begin(), points->end(),
            [](const Vec3& a, const Vec3& b) {
              if (a.x != b.x) return a.x < b.x;
              if (a.y != b.y) return a.y < b.y;
              return a.z < b.z;
            });
  points->erase(std::unique(points->begin(), points->end()), points->end());
}

}  // namespace

Hull Hull::Build(const std::vector<Vec3>& input_points, int rank) {
  KONDO_CHECK(rank >= 1 && rank <= 3);
  KONDO_CHECK(!input_points.empty());
  std::vector<Vec3> points = input_points;
  DedupePoints(&points);

  Hull hull;
  hull.rank_ = rank;
  hull.origin_ = points[0];

  // Greedy affine-basis construction: repeatedly pick the point with the
  // largest residual after projecting onto the current basis.
  int affine_rank = 0;
  while (affine_rank < rank) {
    double best_residual = kGeomTol;
    Vec3 best_direction;
    bool found = false;
    for (const Vec3& p : points) {
      Vec3 rel = p - hull.origin_;
      for (int b = 0; b < affine_rank; ++b) {
        rel = rel - hull.basis_[b] * Dot(rel, hull.basis_[b]);
      }
      const double residual = Norm(rel);
      if (residual > best_residual) {
        best_residual = residual;
        best_direction = rel / residual;
        found = true;
      }
    }
    if (!found) {
      break;
    }
    hull.basis_[affine_rank++] = best_direction;
  }
  hull.affine_rank_ = affine_rank;

  switch (affine_rank) {
    case 0: {
      hull.vertices_ = {hull.origin_};
      break;
    }
    case 1: {
      double lo = 0.0;
      double hi = 0.0;
      for (const Vec3& p : points) {
        const double t = Dot(p - hull.origin_, hull.basis_[0]);
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
      hull.seg_lo_ = lo;
      hull.seg_hi_ = hi;
      hull.vertices_ = {hull.origin_ + hull.basis_[0] * lo,
                        hull.origin_ + hull.basis_[0] * hi};
      break;
    }
    case 2: {
      std::vector<Vec2> local(points.size());
      for (size_t i = 0; i < points.size(); ++i) {
        const Vec3 rel = points[i] - hull.origin_;
        local[i] = Vec2{Dot(rel, hull.basis_[0]), Dot(rel, hull.basis_[1])};
      }
      hull.polygon_ = ConvexHull2D(std::move(local));
      hull.vertices_.reserve(hull.polygon_.size());
      for (const Vec2& v : hull.polygon_) {
        hull.vertices_.push_back(hull.origin_ + hull.basis_[0] * v.x +
                                 hull.basis_[1] * v.y);
      }
      break;
    }
    case 3: {
      hull.local_points_.resize(points.size());
      for (size_t i = 0; i < points.size(); ++i) {
        const Vec3 rel = points[i] - hull.origin_;
        hull.local_points_[i] =
            Vec3(Dot(rel, hull.basis_[0]), Dot(rel, hull.basis_[1]),
                 Dot(rel, hull.basis_[2]));
      }
      hull.hull3d_ = ConvexHull3D(hull.local_points_);
      hull.vertices_.reserve(hull.hull3d_.vertex_indices.size());
      for (int idx : hull.hull3d_.vertex_indices) {
        hull.vertices_.push_back(points[static_cast<size_t>(idx)]);
      }
      break;
    }
    default:
      KONDO_LOG(Fatal) << "unreachable affine rank";
  }

  Vec3 sum;
  for (const Vec3& v : hull.vertices_) {
    sum += v;
  }
  hull.centroid_ = sum / static_cast<double>(hull.vertices_.size());
  return hull;
}

Hull Hull::FromIndices(const std::vector<Index>& indices, int rank) {
  std::vector<Vec3> points;
  points.reserve(indices.size());
  for (const Index& index : indices) {
    points.push_back(Vec3::FromIndex(index));
  }
  return Build(points, rank);
}

Vec3 Hull::ToLocal(const Vec3& p, double* residual) const {
  Vec3 rel = p - origin_;
  Vec3 local;
  for (int b = 0; b < affine_rank_; ++b) {
    local[b] = Dot(rel, basis_[b]);
    rel = rel - basis_[b] * local[b];
  }
  if (residual != nullptr) {
    *residual = Norm(rel);
  }
  return local;
}

bool Hull::Contains(const Vec3& p, double tol) const {
  double residual = 0.0;
  const Vec3 local = ToLocal(p, &residual);
  if (residual > tol) {
    return false;
  }
  switch (affine_rank_) {
    case 0:
      return true;  // residual already checked against the single point.
    case 1:
      return local.x >= seg_lo_ - tol && local.x <= seg_hi_ + tol;
    case 2:
      return PointInConvexPolygon(polygon_, Vec2{local.x, local.y}, tol);
    case 3:
      return PointInHull3D(hull3d_, local, tol);
    default:
      return false;
  }
}

bool Hull::ContainsIndex(const Index& index, double tol) const {
  return Contains(Vec3::FromIndex(index), tol);
}

double Hull::Measure() const {
  switch (affine_rank_) {
    case 0:
      return 0.0;
    case 1:
      return seg_hi_ - seg_lo_;
    case 2:
      return ConvexPolygonArea(polygon_);
    case 3:
      return Hull3DVolume(hull3d_, local_points_);
    default:
      return 0.0;
  }
}

double Hull::MinVertexDistance(const Hull& other) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Vec3& a : vertices_) {
    for (const Vec3& b : other.vertices_) {
      best = std::min(best, Distance(a, b));
    }
  }
  return best;
}

double Hull::CentroidDistance(const Hull& other) const {
  return Distance(centroid_, other.centroid_);
}

void Hull::IntegerBounds(int64_t lo[3], int64_t hi[3]) const {
  for (int d = 0; d < 3; ++d) {
    lo[d] = 0;
    hi[d] = 0;
  }
  bool first = true;
  for (const Vec3& v : vertices_) {
    for (int d = 0; d < rank_; ++d) {
      const int64_t vlo = static_cast<int64_t>(std::floor(v[d] - kGeomTol));
      const int64_t vhi = static_cast<int64_t>(std::ceil(v[d] + kGeomTol));
      if (first) {
        lo[d] = vlo;
        hi[d] = vhi;
      } else {
        lo[d] = std::min(lo[d], vlo);
        hi[d] = std::max(hi[d], vhi);
      }
    }
    first = false;
  }
}

void Hull::RasterizeInto(IndexSet* out, double tol) const {
  const Shape& shape = out->shape();
  KONDO_CHECK_EQ(shape.rank(), rank_);
  int64_t lo[3];
  int64_t hi[3];
  IntegerBounds(lo, hi);
  for (int d = 0; d < rank_; ++d) {
    lo[d] = std::max<int64_t>(lo[d], 0);
    hi[d] = std::min<int64_t>(hi[d], shape.dim(d) - 1);
  }
  // Dimensions beyond rank_ are degenerate single iterations.
  for (int d = rank_; d < 3; ++d) {
    lo[d] = 0;
    hi[d] = 0;
  }
  Index index(rank_);
  for (int64_t x = lo[0]; x <= hi[0]; ++x) {
    for (int64_t y = lo[1]; y <= hi[1]; ++y) {
      for (int64_t z = lo[2]; z <= hi[2]; ++z) {
        Vec3 p(static_cast<double>(x), static_cast<double>(y),
               static_cast<double>(z));
        if (!Contains(p, tol)) {
          continue;
        }
        index[0] = x;
        if (rank_ > 1) index[1] = y;
        if (rank_ > 2) index[2] = z;
        out->Insert(index);
      }
    }
  }
}

int64_t Hull::CountIntegerPoints(const Shape& shape, double tol) const {
  IndexSet scratch(shape);
  RasterizeInto(&scratch, tol);
  return static_cast<int64_t>(scratch.size());
}

}  // namespace kondo
