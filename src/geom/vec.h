#ifndef KONDO_GEOM_VEC_H_
#define KONDO_GEOM_VEC_H_

#include <cmath>
#include <ostream>

#include "array/index.h"

namespace kondo {

/// Numeric tolerance for geometric predicates. Index coordinates are
/// integers (unit spacing), so an absolute tolerance is appropriate.
inline constexpr double kGeomTol = 1e-7;

/// A point/vector in up to three dimensions. Hull computation supports
/// ambient ranks 1..3 (the ranks evaluated in the paper); unused coordinates
/// are zero.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3() = default;
  Vec3(double x_in, double y_in, double z_in = 0.0)
      : x(x_in), y(y_in), z(z_in) {}

  /// Converts an array index (rank <= 3) to a point.
  static Vec3 FromIndex(const Index& index) {
    Vec3 v;
    if (index.rank() > 0) v.x = static_cast<double>(index[0]);
    if (index.rank() > 1) v.y = static_cast<double>(index[1]);
    if (index.rank() > 2) v.z = static_cast<double>(index[2]);
    return v;
  }

  double operator[](int d) const { return d == 0 ? x : (d == 1 ? y : z); }
  double& operator[](int d) {
    return d == 0 ? x : (d == 1 ? y : z);
  }

  friend Vec3 operator+(const Vec3& a, const Vec3& b) {
    return Vec3(a.x + b.x, a.y + b.y, a.z + b.z);
  }
  friend Vec3 operator-(const Vec3& a, const Vec3& b) {
    return Vec3(a.x - b.x, a.y - b.y, a.z - b.z);
  }
  friend Vec3 operator*(const Vec3& a, double s) {
    return Vec3(a.x * s, a.y * s, a.z * s);
  }
  friend Vec3 operator*(double s, const Vec3& a) { return a * s; }
  friend Vec3 operator/(const Vec3& a, double s) {
    return Vec3(a.x / s, a.y / s, a.z / s);
  }
  Vec3& operator+=(const Vec3& b) {
    x += b.x;
    y += b.y;
    z += b.z;
    return *this;
  }

  friend bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

inline double Dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Vec3 Cross(const Vec3& a, const Vec3& b) {
  return Vec3(a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
              a.x * b.y - a.y * b.x);
}

inline double NormSquared(const Vec3& a) { return Dot(a, a); }
inline double Norm(const Vec3& a) { return std::sqrt(NormSquared(a)); }
inline double Distance(const Vec3& a, const Vec3& b) { return Norm(a - b); }

/// Returns `a` scaled to unit length; zero vectors are returned unchanged.
inline Vec3 Normalized(const Vec3& a) {
  const double n = Norm(a);
  return n > 0.0 ? a / n : a;
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace kondo

#endif  // KONDO_GEOM_VEC_H_
