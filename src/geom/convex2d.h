#ifndef KONDO_GEOM_CONVEX2D_H_
#define KONDO_GEOM_CONVEX2D_H_

#include <vector>

namespace kondo {

/// A point in the plane (local 2-D hull coordinates).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

/// Twice the signed area of triangle (a, b, c); positive when c is to the
/// left of the directed line a->b.
double Cross2(const Vec2& a, const Vec2& b, const Vec2& c);

/// Andrew's monotone chain convex hull. Returns the hull vertices in
/// counter-clockwise order without a repeated first vertex. Collinear points
/// on hull edges are dropped. Requires at least one point; degenerate inputs
/// (all equal / all collinear) return 1 or 2 vertices respectively.
std::vector<Vec2> ConvexHull2D(std::vector<Vec2> points);

/// True when `p` lies inside or on the boundary of the CCW convex polygon
/// `hull` (as produced by ConvexHull2D), with absolute tolerance `tol`.
/// Handles degenerate hulls of 1 or 2 vertices.
bool PointInConvexPolygon(const std::vector<Vec2>& hull, const Vec2& p,
                          double tol);

/// Area of the CCW convex polygon (0 for degenerate hulls).
double ConvexPolygonArea(const std::vector<Vec2>& hull);

}  // namespace kondo

#endif  // KONDO_GEOM_CONVEX2D_H_
