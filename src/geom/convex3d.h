#ifndef KONDO_GEOM_CONVEX3D_H_
#define KONDO_GEOM_CONVEX3D_H_

#include <cstdint>
#include <vector>

#include "geom/vec.h"

namespace kondo {

/// A triangular facet of a 3-D convex hull: vertex indices into the input
/// point array plus the outward-facing plane (unit `normal`, `offset` such
/// that points q on the plane satisfy Dot(normal, q) == offset).
struct HullFacet {
  int a = 0;
  int b = 0;
  int c = 0;
  Vec3 normal;
  double offset = 0.0;

  /// Signed distance of `p` from the facet plane; positive outside.
  double SignedDistance(const Vec3& p) const {
    return Dot(normal, p) - offset;
  }
};

/// Result of a 3-D hull computation.
struct Hull3D {
  std::vector<HullFacet> facets;
  /// Indices (into the input points) of the vertices on the hull.
  std::vector<int> vertex_indices;
};

/// Incremental 3-D convex hull. Requires the input to be full-dimensional:
/// at least 4 points not all coplanar (the caller performs affine-rank
/// reduction first; see hull.h). Complexity O(n * f), ample for the cell- and
/// merge-sized point sets the Carver produces.
Hull3D ConvexHull3D(const std::vector<Vec3>& points);

/// True when `p` is inside or on the hull (within `tol` of every facet).
bool PointInHull3D(const Hull3D& hull, const Vec3& p, double tol);

/// Volume of the hull polytope.
double Hull3DVolume(const Hull3D& hull, const std::vector<Vec3>& points);

}  // namespace kondo

#endif  // KONDO_GEOM_CONVEX3D_H_
