#include "geom/convex2d.h"

#include <algorithm>
#include <cmath>

namespace kondo {
namespace {

/// Distance from p to segment [a, b].
double PointSegmentDistance(const Vec2& a, const Vec2& b, const Vec2& p) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len_sq = dx * dx + dy * dy;
  double t = 0.0;
  if (len_sq > 0.0) {
    t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len_sq;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double px = a.x + t * dx - p.x;
  const double py = a.y + t * dy - p.y;
  return std::sqrt(px * px + py * py);
}

}  // namespace

double Cross2(const Vec2& a, const Vec2& b, const Vec2& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

std::vector<Vec2> ConvexHull2D(std::vector<Vec2> points) {
  std::sort(points.begin(), points.end(), [](const Vec2& a, const Vec2& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end(),
                           [](const Vec2& a, const Vec2& b) {
                             return a.x == b.x && a.y == b.y;
                           }),
               points.end());
  const size_t n = points.size();
  if (n <= 2) {
    return points;
  }

  std::vector<Vec2> hull(2 * n);
  size_t k = 0;
  // Lower chain.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Cross2(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper chain.
  const size_t lower_size = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size &&
           Cross2(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  if (hull.size() == 2 && hull[0].x == hull[1].x && hull[0].y == hull[1].y) {
    hull.resize(1);
  }
  return hull;
}

bool PointInConvexPolygon(const std::vector<Vec2>& hull, const Vec2& p,
                          double tol) {
  if (hull.empty()) {
    return false;
  }
  if (hull.size() == 1) {
    return std::abs(hull[0].x - p.x) <= tol && std::abs(hull[0].y - p.y) <= tol;
  }
  if (hull.size() == 2) {
    return PointSegmentDistance(hull[0], hull[1], p) <= tol;
  }
  for (size_t i = 0; i < hull.size(); ++i) {
    const Vec2& a = hull[i];
    const Vec2& b = hull[(i + 1) % hull.size()];
    // Normalise the signed area by the edge length to get a true distance.
    const double cross = Cross2(a, b, p);
    const double edge_len =
        std::hypot(b.x - a.x, b.y - a.y);
    if (edge_len > 0.0 && cross < -tol * edge_len) {
      return false;
    }
  }
  return true;
}

double ConvexPolygonArea(const std::vector<Vec2>& hull) {
  if (hull.size() < 3) {
    return 0.0;
  }
  double twice_area = 0.0;
  for (size_t i = 0; i < hull.size(); ++i) {
    const Vec2& a = hull[i];
    const Vec2& b = hull[(i + 1) % hull.size()];
    twice_area += a.x * b.y - b.x * a.y;
  }
  return 0.5 * std::abs(twice_area);
}

}  // namespace kondo
