#include "geom/convex3d.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"

namespace kondo {
namespace {

/// Builds an outward-oriented facet over points[a], points[b], points[c],
/// flipping winding if needed so that `interior` lies on the negative side.
HullFacet MakeFacet(const std::vector<Vec3>& points, int a, int b, int c,
                    const Vec3& interior) {
  HullFacet facet;
  facet.a = a;
  facet.b = b;
  facet.c = c;
  Vec3 normal =
      Cross(points[b] - points[a], points[c] - points[a]);
  normal = Normalized(normal);
  double offset = Dot(normal, points[a]);
  if (Dot(normal, interior) - offset > 0.0) {
    std::swap(facet.b, facet.c);
    normal = normal * -1.0;
    offset = -offset;
  }
  facet.normal = normal;
  facet.offset = offset;
  return facet;
}

/// Finds four points spanning 3-D space; returns false when the input is
/// degenerate (the caller should have rank-reduced already).
bool FindInitialTetrahedron(const std::vector<Vec3>& points, int out[4]) {
  const int n = static_cast<int>(points.size());
  if (n < 4) {
    return false;
  }
  // First two: the pair realizing the largest extent along any axis.
  int i0 = 0;
  int i1 = 0;
  double best = -1.0;
  for (int axis = 0; axis < 3; ++axis) {
    int lo = 0;
    int hi = 0;
    for (int i = 1; i < n; ++i) {
      if (points[i][axis] < points[lo][axis]) lo = i;
      if (points[i][axis] > points[hi][axis]) hi = i;
    }
    const double extent = points[hi][axis] - points[lo][axis];
    if (extent > best) {
      best = extent;
      i0 = lo;
      i1 = hi;
    }
  }
  if (best <= kGeomTol) {
    return false;
  }
  // Third: farthest from the line i0-i1.
  const Vec3 dir = Normalized(points[i1] - points[i0]);
  int i2 = -1;
  best = kGeomTol;
  for (int i = 0; i < n; ++i) {
    const Vec3 rel = points[i] - points[i0];
    const double dist = Norm(rel - dir * Dot(rel, dir));
    if (dist > best) {
      best = dist;
      i2 = i;
    }
  }
  if (i2 < 0) {
    return false;
  }
  // Fourth: farthest from the plane (i0, i1, i2).
  const Vec3 normal =
      Normalized(Cross(points[i1] - points[i0], points[i2] - points[i0]));
  int i3 = -1;
  best = kGeomTol;
  for (int i = 0; i < n; ++i) {
    const double dist = std::abs(Dot(normal, points[i] - points[i0]));
    if (dist > best) {
      best = dist;
      i3 = i;
    }
  }
  if (i3 < 0) {
    return false;
  }
  out[0] = i0;
  out[1] = i1;
  out[2] = i2;
  out[3] = i3;
  return true;
}

}  // namespace

Hull3D ConvexHull3D(const std::vector<Vec3>& points) {
  Hull3D hull;
  int tetra[4];
  KONDO_CHECK(FindInitialTetrahedron(points, tetra))
      << "ConvexHull3D requires full-dimensional input";

  const Vec3 interior = (points[tetra[0]] + points[tetra[1]] +
                         points[tetra[2]] + points[tetra[3]]) /
                        4.0;
  hull.facets.push_back(
      MakeFacet(points, tetra[0], tetra[1], tetra[2], interior));
  hull.facets.push_back(
      MakeFacet(points, tetra[0], tetra[1], tetra[3], interior));
  hull.facets.push_back(
      MakeFacet(points, tetra[0], tetra[2], tetra[3], interior));
  hull.facets.push_back(
      MakeFacet(points, tetra[1], tetra[2], tetra[3], interior));

  const int n = static_cast<int>(points.size());
  for (int i = 0; i < n; ++i) {
    if (i == tetra[0] || i == tetra[1] || i == tetra[2] || i == tetra[3]) {
      continue;
    }
    // Collect facets visible from points[i].
    std::vector<char> visible(hull.facets.size(), 0);
    bool any_visible = false;
    for (size_t f = 0; f < hull.facets.size(); ++f) {
      if (hull.facets[f].SignedDistance(points[i]) > kGeomTol) {
        visible[f] = 1;
        any_visible = true;
      }
    }
    if (!any_visible) {
      continue;  // Inside (or on) the current hull.
    }
    // Horizon edges: edges belonging to exactly one visible facet. We count
    // undirected edges over visible facets; shared edges appear twice.
    std::map<std::pair<int, int>, std::pair<int, int>> edge_counts;
    auto add_edge = [&edge_counts](int u, int v) {
      auto key = std::minmax(u, v);
      auto [it, inserted] =
          edge_counts.try_emplace({key.first, key.second},
                                  std::pair<int, int>{u, v});
      if (!inserted) {
        it->second = {-1, -1};  // Interior edge of the visible region.
      }
    };
    for (size_t f = 0; f < hull.facets.size(); ++f) {
      if (!visible[f]) {
        continue;
      }
      add_edge(hull.facets[f].a, hull.facets[f].b);
      add_edge(hull.facets[f].b, hull.facets[f].c);
      add_edge(hull.facets[f].c, hull.facets[f].a);
    }
    // Remove visible facets.
    std::vector<HullFacet> kept;
    kept.reserve(hull.facets.size());
    for (size_t f = 0; f < hull.facets.size(); ++f) {
      if (!visible[f]) {
        kept.push_back(hull.facets[f]);
      }
    }
    hull.facets = std::move(kept);
    // Attach a new facet for every horizon edge.
    for (const auto& [key, directed] : edge_counts) {
      if (directed.first < 0) {
        continue;  // Interior edge, not on the horizon.
      }
      hull.facets.push_back(
          MakeFacet(points, directed.first, directed.second, i, interior));
    }
  }

  std::set<int> vertex_set;
  for (const HullFacet& facet : hull.facets) {
    vertex_set.insert(facet.a);
    vertex_set.insert(facet.b);
    vertex_set.insert(facet.c);
  }
  hull.vertex_indices.assign(vertex_set.begin(), vertex_set.end());
  return hull;
}

bool PointInHull3D(const Hull3D& hull, const Vec3& p, double tol) {
  for (const HullFacet& facet : hull.facets) {
    if (facet.SignedDistance(p) > tol) {
      return false;
    }
  }
  return !hull.facets.empty();
}

double Hull3DVolume(const Hull3D& hull, const std::vector<Vec3>& points) {
  if (hull.facets.empty()) {
    return 0.0;
  }
  // Sum of signed tetrahedron volumes from the origin; facets are outward
  // oriented so the signed sum is the enclosed volume.
  double volume = 0.0;
  for (const HullFacet& facet : hull.facets) {
    const Vec3& a = points[facet.a];
    const Vec3& b = points[facet.b];
    const Vec3& c = points[facet.c];
    volume += Dot(a, Cross(b, c));
  }
  return std::abs(volume) / 6.0;
}

}  // namespace kondo
