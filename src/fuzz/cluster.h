#ifndef KONDO_FUZZ_CLUSTER_H_
#define KONDO_FUZZ_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "fuzz/param_space.h"

namespace kondo {

/// A spatial cluster of parameter values of one kind (useful or non-useful).
struct Cluster {
  ParamValue center;
  int64_t count = 0;
};

/// The cluster store behind the boundary-based exploit-and-explore schedule
/// (Section IV-A2): the ADD_TO_CLUSTER routine computes the minimum
/// euclidean distance of a parameter value to the existing cluster centres
/// of the same type; if it exceeds the configured cluster diameter the value
/// founds a new cluster, otherwise it joins (and re-centres) the nearest.
class ClusterStore {
 public:
  ClusterStore() = default;

  /// ADD_TO_CLUSTER. Returns the index of the cluster joined or created.
  int Add(const ParamValue& v, double diameter);

  /// Index of the cluster whose centre is nearest to `v`, or -1 when empty.
  /// `distance` (optional) receives the centre distance.
  int Nearest(const ParamValue& v, double* distance = nullptr) const;

  const std::vector<Cluster>& clusters() const { return clusters_; }
  bool empty() const { return clusters_.empty(); }
  int size() const { return static_cast<int>(clusters_.size()); }

  void Clear() { clusters_.clear(); }

 private:
  std::vector<Cluster> clusters_;
};

}  // namespace kondo

#endif  // KONDO_FUZZ_CLUSTER_H_
