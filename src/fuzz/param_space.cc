#include "fuzz/param_space.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace kondo {

ParamValue ParamSpace::Sample(Rng& rng) const {
  ParamValue v(ranges_.size());
  for (size_t i = 0; i < ranges_.size(); ++i) {
    const ParamRange& r = ranges_[i];
    if (r.integer) {
      v[i] = static_cast<double>(rng.UniformInt(
          static_cast<int64_t>(std::ceil(r.lo)),
          static_cast<int64_t>(std::floor(r.hi))));
    } else {
      v[i] = rng.UniformDouble(r.lo, r.hi);
    }
  }
  return v;
}

bool ParamSpace::Contains(const ParamValue& v) const {
  if (v.size() != ranges_.size()) {
    return false;
  }
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (v[i] < ranges_[i].lo || v[i] > ranges_[i].hi) {
      return false;
    }
  }
  return true;
}

ParamValue ParamSpace::Clamp(ParamValue v) const {
  KONDO_CHECK_EQ(v.size(), ranges_.size());
  for (size_t i = 0; i < ranges_.size(); ++i) {
    const ParamRange& r = ranges_[i];
    if (r.integer) {
      v[i] = std::round(v[i]);
    }
    if (v[i] < r.lo) v[i] = r.integer ? std::ceil(r.lo) : r.lo;
    if (v[i] > r.hi) v[i] = r.integer ? std::floor(r.hi) : r.hi;
  }
  return v;
}

double ParamSpace::NumValuations() const {
  double count = 1.0;
  for (const ParamRange& r : ranges_) {
    if (!r.integer) {
      return std::numeric_limits<double>::infinity();
    }
    count *= r.Cardinality();
  }
  return count;
}

std::string ParamSpace::QuantizeKey(const ParamValue& v) const {
  std::ostringstream os;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    if (i < ranges_.size() && ranges_[i].integer) {
      os << static_cast<int64_t>(std::llround(v[i]));
    } else {
      os << static_cast<int64_t>(std::llround(v[i] * 1e6));
    }
  }
  return os.str();
}

std::string ParamSpace::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < ranges_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << ranges_[i].lo << "-" << ranges_[i].hi;
    if (!ranges_[i].integer) {
      os << " (real)";
    }
  }
  os << "]";
  return os.str();
}

double ParamDistance(const ParamValue& a, const ParamValue& b) {
  KONDO_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace kondo
