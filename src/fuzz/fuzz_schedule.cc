#include "fuzz/fuzz_schedule.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace kondo {

FuzzSchedule::FuzzSchedule(ParamSpace space, Shape shape, FuzzConfig config,
                           uint64_t rng_seed)
    : space_(std::move(space)),
      shape_(std::move(shape)),
      config_(config),
      rng_(rng_seed),
      epsilon_(config.epsilon0) {}

void FuzzSchedule::RandomRestart() {
  queue_.clear();
  for (int i = 0; i < config_.init_seeds; ++i) {
    ParamValue v = space_.Sample(rng_);
    const std::string key = space_.QuantizeKey(v);
    if (enqueued_or_evaluated_.insert(key).second) {
      queue_.push_back(std::move(v));
    }
  }
}

FuzzResult FuzzSchedule::Run(const DebloatTestFn& test,
                             const FuzzObserver& observer) {
  FuzzResult result;
  result.discovered = IndexSet(shape_);
  Stopwatch stopwatch;

  int itr = 0;
  int new_itr = 0;  // Iterations since the last newly discovered offset.
  while (true) {
    if (itr >= config_.max_iter) {
      break;
    }
    if (new_itr >= config_.stop_iter) {
      result.stats.stopped_by_stagnation = true;
      break;
    }
    if (config_.max_seconds > 0.0 &&
        stopwatch.ElapsedSeconds() >= config_.max_seconds) {
      result.stats.stopped_by_budget = true;
      break;
    }
    ++itr;

    if (queue_.empty() || (config_.restart > 0 && itr % config_.restart == 0)) {
      RandomRestart();
      ++result.stats.restarts;
      if (queue_.empty()) {
        // Every sample was a duplicate; extremely small Θ. Give up.
        break;
      }
    }

    ParamValue v = std::move(queue_.front());
    queue_.pop_front();

    const IndexSet index_subset = test(v);
    ++result.stats.evaluations;
    const bool useful = !index_subset.empty();
    if (useful) {
      ++result.stats.useful_evaluations;
    }

    const size_t before = result.discovered.size();
    result.discovered.Union(index_subset);
    if (result.discovered.size() > before) {
      new_itr = 0;
    } else {
      ++new_itr;
    }

    if (useful) {
      useful_clusters_.Add(v, config_.diameter);
    } else {
      non_useful_clusters_.Add(v, config_.diameter);
    }
    result.seeds.push_back(Seed{v, useful});
    if (observer != nullptr) {
      observer(itr, v, useful, result.discovered.size());
    }

    for (ParamValue& candidate : Mutate(v, useful)) {
      const std::string key = space_.QuantizeKey(candidate);
      if (enqueued_or_evaluated_.insert(key).second) {
        queue_.push_back(std::move(candidate));
      }
    }

    if (config_.decay_iter > 0 && itr % config_.decay_iter == 0) {
      epsilon_ *= config_.decay;
    }
  }

  result.stats.iterations = itr;
  result.stats.final_epsilon = epsilon_;
  result.stats.elapsed_seconds = stopwatch.ElapsedSeconds();
  return result;
}

std::vector<ParamValue> FuzzSchedule::Mutate(const ParamValue& v,
                                             bool useful) {
  const DistRange& dist = useful ? config_.u_dist : config_.n_dist;
  const int reps = useful ? config_.u_reps : config_.n_reps;

  // With probability ε mutate uniformly (plain exploit/explore); otherwise
  // use the boundary-based schedule: a useful seed moves toward the nearest
  // non-useful cluster and vice versa, homing in on the subset boundary.
  const bool use_uniform = rng_.Bernoulli(epsilon_);
  const ClusterStore& opposite =
      useful ? non_useful_clusters_ : useful_clusters_;

  std::vector<ParamValue> candidates;
  candidates.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    if (use_uniform || opposite.empty()) {
      candidates.push_back(UniformMutation(v, dist));
      continue;
    }
    const int nearest = opposite.Nearest(v);
    candidates.push_back(
        GreedyMutation(v, opposite.clusters()[static_cast<size_t>(nearest)].center,
                       dist));
  }
  return candidates;
}

ParamValue FuzzSchedule::UniformMutation(const ParamValue& v,
                                         const DistRange& dist) {
  ParamValue candidate = v;
  for (double& coord : candidate) {
    const double magnitude = rng_.UniformDouble(dist.lo, dist.hi);
    const double sign = rng_.Bernoulli(0.5) ? 1.0 : -1.0;
    coord += sign * magnitude;
  }
  return space_.Clamp(std::move(candidate));
}

ParamValue FuzzSchedule::GreedyMutation(const ParamValue& v,
                                        const ParamValue& target,
                                        const DistRange& dist) {
  const double distance = ParamDistance(v, target);
  // Scale the frame by the distance to the opposite-type cluster: far from
  // the boundary we take bigger steps, close to it we densify (Section
  // IV-A2). The cluster diameter serves as the reference length.
  const double scale =
      std::clamp(distance / std::max(config_.diameter, 1e-9), 0.25, 4.0);
  double step = rng_.UniformDouble(dist.lo, dist.hi) * scale;
  // Never overshoot past the target centre; the boundary lies between.
  step = std::min(step, distance);

  ParamValue candidate = v;
  if (distance > 1e-12) {
    for (size_t i = 0; i < candidate.size(); ++i) {
      candidate[i] += (target[i] - v[i]) / distance * step;
    }
  }
  // Small orthogonal jitter diversifies the approach path.
  for (double& coord : candidate) {
    coord += rng_.UniformDouble(-dist.lo, dist.lo) * 0.5;
  }
  return space_.Clamp(std::move(candidate));
}

}  // namespace kondo
