#include "fuzz/fuzz_schedule.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace kondo {
namespace {

/// Speculation window per worker: how many queued candidates are evaluated
/// ahead of consumption. Wasted work is bounded by one window when a
/// stagnation stop fires mid-batch.
constexpr int64_t kBatchOvercommit = 2;

}  // namespace

FuzzSchedule::FuzzSchedule(ParamSpace space, Shape shape, FuzzConfig config,
                           uint64_t rng_seed)
    : space_(std::move(space)),
      shape_(std::move(shape)),
      config_(config),
      rng_(rng_seed),
      campaign_seed_(rng_seed),
      epsilon_(config.epsilon0) {}

void FuzzSchedule::RandomRestart() {
  queue_.clear();
  ++round_;
  round_index_ = 0;
  for (int i = 0; i < config_.init_seeds; ++i) {
    Enqueue(space_.Sample(rng_));
  }
}

void FuzzSchedule::Enqueue(ParamValue v) {
  const std::string key = space_.QuantizeKey(v);
  if (!enqueued_or_evaluated_.insert(key).second) {
    return;
  }
  TestCandidate candidate;
  candidate.round = round_;
  candidate.index = round_index_++;
  candidate.rng_seed = DeriveTestSeed(campaign_seed_, candidate.round,
                                      candidate.index);
  candidate.seq = next_seq_++;
  candidate.value = std::move(v);
  queue_.push_back(std::move(candidate));
}

FuzzResult FuzzSchedule::Run(const DebloatTestFn& test,
                             const FuzzObserver& observer) {
  CampaignExecutor executor(1);
  return Run(
      executor,
      [&test](const TestCandidate& candidate) {
        CandidateResult result;
        result.accessed = test(candidate.value);
        return result;
      },
      /*collector=*/nullptr, observer);
}

FuzzResult FuzzSchedule::Run(CampaignExecutor& executor,
                             const CandidateTestFn& test,
                             ResultCollector* collector,
                             const FuzzObserver& observer) {
  FuzzResult result;
  result.discovered = IndexSet(shape_);
  Stopwatch stopwatch;

  // jobs=1 keeps the window at 1: zero speculation, exactly the serial loop.
  const int64_t max_batch =
      executor.jobs() <= 1
          ? 1
          : static_cast<int64_t>(executor.jobs()) * kBatchOvercommit;

  int itr = 0;
  int new_itr = 0;  // Iterations since the last newly discovered offset.
  bool done = false;
  while (!done) {
    // ---- serial: stopping criteria for the upcoming iteration. ----
    if (itr >= config_.max_iter) {
      break;
    }
    if (new_itr >= config_.stop_iter) {
      result.stats.stopped_by_stagnation = true;
      break;
    }
    if (config_.max_seconds > 0.0 &&
        stopwatch.ElapsedSeconds() >= config_.max_seconds) {
      result.stats.stopped_by_budget = true;
      break;
    }
    if (config_.max_evals > 0 &&
        result.stats.evaluations >= config_.max_evals) {
      result.stats.stopped_by_eval_budget = true;
      break;
    }

    const int next_itr = itr + 1;
    if (queue_.empty() ||
        (config_.restart > 0 && next_itr % config_.restart == 0)) {
      RandomRestart();
      ++result.stats.restarts;
      if (queue_.empty()) {
        // Every sample was a duplicate; extremely small Θ. Give up.
        break;
      }
    }

    // ---- serial: carve the evaluation batch. The batch is the queue
    // prefix the serial loop is guaranteed to reach: it never crosses the
    // next restart boundary (where the queue would be cleared) and never
    // exceeds the remaining iteration budget, so membership is independent
    // of the jobs setting. ----
    int64_t batch_size = std::min<int64_t>(
        static_cast<int64_t>(queue_.size()), max_batch);
    batch_size = std::min<int64_t>(batch_size, config_.max_iter - itr);
    if (config_.max_evals > 0) {
      // Evaluations consumed so far is a serial counter, so this clamp is
      // identical at every jobs setting; it only trims speculative waste.
      batch_size = std::min<int64_t>(
          batch_size, config_.max_evals - result.stats.evaluations);
    }
    if (config_.restart > 0) {
      const int64_t boundary =
          (static_cast<int64_t>(next_itr) / config_.restart + 1) *
          config_.restart;
      batch_size = std::min(batch_size, boundary - next_itr);
    }
    std::vector<TestCandidate> batch;
    batch.reserve(static_cast<size_t>(batch_size));
    for (int64_t i = 0; i < batch_size; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }

    // ---- parallel: the debloat tests. Tests are pure functions of their
    // candidate (identity-derived RNG streams, no shared campaign state),
    // so evaluation order cannot leak into the results. Transient failures
    // are retried in place on the owning worker. ----
    const RetryPolicy retry{config_.test_max_attempts,
                            config_.test_backoff_micros};
    std::vector<CandidateResult> outcomes =
        executor.RunBatch(batch, test, retry);

    // ---- serial: consume outcomes in candidate order. A stopping
    // criterion firing mid-batch discards the speculative tail, exactly as
    // the serial loop would never have executed it. ----
    for (size_t k = 0; k < batch.size(); ++k) {
      if (new_itr >= config_.stop_iter) {
        result.stats.stopped_by_stagnation = true;
        done = true;
        break;
      }
      if (config_.max_seconds > 0.0 &&
          stopwatch.ElapsedSeconds() >= config_.max_seconds) {
        result.stats.stopped_by_budget = true;
        done = true;
        break;
      }
      if (config_.max_evals > 0 &&
          result.stats.evaluations >= config_.max_evals) {
        result.stats.stopped_by_eval_budget = true;
        done = true;
        break;
      }
      ++itr;

      const TestCandidate& candidate = batch[k];
      const CandidateResult& outcome = outcomes[k];
      result.stats.retries += outcome.attempts - 1;

      if (!outcome.status.ok()) {
        // Persistently failing parameter point: quarantine it. The
        // decision depends only on the candidate's outcome (consumed here
        // in candidate order), so it is identical at every jobs setting.
        ++result.stats.quarantined;
        result.stats.quarantined_points.push_back(candidate.value);
        KONDO_LOG(Warning) << "quarantined parameter point after "
                           << outcome.attempts
                           << " attempts: " << outcome.status;
        ++new_itr;  // No lineage from this test: stagnation advances.
        if (config_.decay_iter > 0 && itr % config_.decay_iter == 0) {
          epsilon_ *= config_.decay;
        }
        continue;
      }

      if (collector != nullptr) {
        const Status status = collector->Collect(outcome);
        if (!status.ok()) {
          // Infrastructure failure (the lineage store could not be
          // written): abort the campaign gracefully so the scheduler can
          // report it and a resume can re-run the shard.
          result.status = Status(
              status.code(),
              StrCat("campaign result collection failed: ", status.message()));
          done = true;
          break;
        }
      }

      ++result.stats.evaluations;
      const bool useful = !outcome.accessed.empty();
      if (useful) {
        ++result.stats.useful_evaluations;
      }

      const size_t before = result.discovered.size();
      result.discovered.Union(outcome.accessed);
      if (result.discovered.size() > before) {
        new_itr = 0;
      } else {
        ++new_itr;
      }

      if (useful) {
        useful_clusters_.Add(candidate.value, config_.diameter);
      } else {
        non_useful_clusters_.Add(candidate.value, config_.diameter);
      }
      result.seeds.push_back(Seed{candidate.value, useful});
      if (observer != nullptr) {
        observer(itr, candidate.value, useful, result.discovered.size());
      }

      for (ParamValue& mutated : Mutate(candidate.value, useful)) {
        Enqueue(std::move(mutated));
      }

      if (config_.decay_iter > 0 && itr % config_.decay_iter == 0) {
        epsilon_ *= config_.decay;
      }
    }
  }

  result.stats.iterations = itr;
  result.stats.final_epsilon = epsilon_;
  result.stats.elapsed_seconds = stopwatch.ElapsedSeconds();
  return result;
}

std::vector<ParamValue> FuzzSchedule::Mutate(const ParamValue& v,
                                             bool useful) {
  const DistRange& dist = useful ? config_.u_dist : config_.n_dist;
  const int reps = useful ? config_.u_reps : config_.n_reps;

  // With probability ε mutate uniformly (plain exploit/explore); otherwise
  // use the boundary-based schedule: a useful seed moves toward the nearest
  // non-useful cluster and vice versa, homing in on the subset boundary.
  const bool use_uniform = rng_.Bernoulli(epsilon_);
  const ClusterStore& opposite =
      useful ? non_useful_clusters_ : useful_clusters_;

  std::vector<ParamValue> candidates;
  candidates.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    if (use_uniform || opposite.empty()) {
      candidates.push_back(UniformMutation(v, dist));
      continue;
    }
    const int nearest = opposite.Nearest(v);
    candidates.push_back(
        GreedyMutation(v, opposite.clusters()[static_cast<size_t>(nearest)].center,
                       dist));
  }
  return candidates;
}

ParamValue FuzzSchedule::UniformMutation(const ParamValue& v,
                                         const DistRange& dist) {
  ParamValue candidate = v;
  for (double& coord : candidate) {
    const double magnitude = rng_.UniformDouble(dist.lo, dist.hi);
    const double sign = rng_.Bernoulli(0.5) ? 1.0 : -1.0;
    coord += sign * magnitude;
  }
  return space_.Clamp(std::move(candidate));
}

ParamValue FuzzSchedule::GreedyMutation(const ParamValue& v,
                                        const ParamValue& target,
                                        const DistRange& dist) {
  const double distance = ParamDistance(v, target);
  // Scale the frame by the distance to the opposite-type cluster: far from
  // the boundary we take bigger steps, close to it we densify (Section
  // IV-A2). The cluster diameter serves as the reference length.
  const double scale =
      std::clamp(distance / std::max(config_.diameter, 1e-9), 0.25, 4.0);
  double step = rng_.UniformDouble(dist.lo, dist.hi) * scale;
  // Never overshoot past the target centre; the boundary lies between.
  step = std::min(step, distance);

  ParamValue candidate = v;
  if (distance > 1e-12) {
    for (size_t i = 0; i < candidate.size(); ++i) {
      candidate[i] += (target[i] - v[i]) / distance * step;
    }
  }
  // Small orthogonal jitter diversifies the approach path.
  for (double& coord : candidate) {
    coord += rng_.UniformDouble(-dist.lo, dist.lo) * 0.5;
  }
  return space_.Clamp(std::move(candidate));
}

}  // namespace kondo
