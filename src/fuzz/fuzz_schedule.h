#ifndef KONDO_FUZZ_FUZZ_SCHEDULE_H_
#define KONDO_FUZZ_FUZZ_SCHEDULE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "array/index_set.h"
#include "common/rng.h"
#include "common/status.h"
#include "exec/campaign_executor.h"
#include "exec/result_collector.h"
#include "exec/test_candidate.h"
#include "fuzz/cluster.h"
#include "fuzz/fuzz_config.h"
#include "fuzz/param_space.h"

namespace kondo {

/// The debloat test of Definition 2: an audited execution of the application
/// for parameter value `v` that returns the accessed index subset `I_v`
/// without the caller needing the data contents.
using DebloatTestFn = std::function<IndexSet(const ParamValue&)>;

/// An evaluated seed: the parameter value and whether its debloat test found
/// any accessed index ("useful" in the paper's terminology).
struct Seed {
  ParamValue value;
  bool useful = false;
};

/// Counters reported by a fuzz campaign.
struct FuzzStats {
  int iterations = 0;        // Schedule iterations executed.
  int evaluations = 0;       // Debloat tests actually run (deduplicated).
  int useful_evaluations = 0;
  int restarts = 0;
  double final_epsilon = 1.0;
  double elapsed_seconds = 0.0;
  bool stopped_by_stagnation = false;   // stop_iter triggered.
  bool stopped_by_budget = false;       // max_seconds (wall-clock) triggered.
  bool stopped_by_eval_budget = false;  // max_evals triggered (jobs-invariant).

  /// Extra debloat-test attempts consumed by the retry policy
  /// (FuzzConfig::test_max_attempts).
  int retries = 0;

  /// Candidates whose debloat test failed every attempt. Their parameter
  /// points are listed in `quarantined_points` so precision/recall
  /// reporting can state what coverage was lost; they contribute no
  /// lineage and no seeds.
  int quarantined = 0;
  std::vector<ParamValue> quarantined_points;
};

/// Result of a fuzz campaign: `IS = ∪ I_v` over the evaluated seeds, plus
/// the seeds themselves (the Fig. 4 scatter) and run statistics.
struct FuzzResult {
  IndexSet discovered;
  std::vector<Seed> seeds;
  FuzzStats stats;

  /// Non-OK when the campaign aborted early on an infrastructure failure
  /// (e.g. the lineage persister could not write). Test failures never set
  /// this — they are retried and quarantined instead.
  Status status;
};

/// Optional per-iteration observer: (iteration, seed evaluated, usefulness,
/// total discovered offsets so far). Used for discovery-trajectory analyses
/// and progress reporting; ignored when null.
using FuzzObserver =
    std::function<void(int itr, const ParamValue& v, bool useful,
                       size_t discovered)>;

/// The fuzz schedule of Algorithm 1. Starts from uniformly sampled seeds,
/// evaluates the debloat test per seed, clusters useful and non-useful
/// values, and mutates each seed either uniformly within a frame (plain
/// exploit/explore) or greedily toward the nearest opposite-type cluster
/// centre (boundary-based), transitioning between the two with an ε-greedy
/// policy. Random restarts prevent localisation.
///
/// The schedule is split into two halves:
///  * candidate *generation* — sampling, deduplication, clustering,
///    mutation, ε decay — is serial and cheap, driven by the single
///    campaign RNG stream;
///  * candidate *execution* — the debloat tests — is embarrassingly
///    parallel within a round and is fanned out through a CampaignExecutor.
///
/// Parallel runs are bit-identical to serial ones: the executor evaluates
/// the queue prefix the serial loop is guaranteed to reach (batches never
/// straddle a restart boundary), results are consumed in candidate order,
/// and per-test randomness comes from `TestCandidate::rng_seed`, a pure
/// function of (campaign seed, restart round, candidate index). Only
/// `FuzzStats::elapsed_seconds` — and, when a wall-clock `max_seconds`
/// budget is set, the point at which it fires — depends on `jobs`.
class FuzzSchedule {
 public:
  /// `shape` is the data array shape (used to size the discovered IndexSet);
  /// `rng_seed` fixes the stochastic stream.
  FuzzSchedule(ParamSpace space, Shape shape, FuzzConfig config,
               uint64_t rng_seed);

  /// Runs the campaign serially to completion under the configured stopping
  /// criteria (a jobs=1 convenience wrapper over the executor overload).
  FuzzResult Run(const DebloatTestFn& test,
                 const FuzzObserver& observer = nullptr);

  /// Runs the campaign with debloat tests fanned out across `executor`'s
  /// workers. When `collector` is non-null, every consumed test's outcome is
  /// funnelled through it — in candidate order, from this (single) thread —
  /// which is how audited campaigns keep KEL1/KEL2 lineage identical to the
  /// serial path. Persist failures abort the campaign (as they do in
  /// RunAudited).
  FuzzResult Run(CampaignExecutor& executor, const CandidateTestFn& test,
                 ResultCollector* collector = nullptr,
                 const FuzzObserver& observer = nullptr);

 private:
  /// Enqueues `config_.init_seeds` fresh uniform samples, clearing the queue
  /// (Algorithm 1's RANDOM_RESTART). Bumps the restart round.
  void RandomRestart();

  /// Deduplicates and enqueues `v`, stamping the candidate's deterministic
  /// identity (round, index, rng_seed, seq).
  void Enqueue(ParamValue v);

  /// MUTATE(v, C): returns up to `reps` candidate values.
  std::vector<ParamValue> Mutate(const ParamValue& v, bool useful);

  /// Plain exploit/explore mutation: each coordinate moves by a magnitude
  /// drawn from `dist` with random sign.
  ParamValue UniformMutation(const ParamValue& v, const DistRange& dist);

  /// Boundary-based mutation: step toward `target` (the nearest
  /// opposite-type cluster centre), frame scaled by the distance to it.
  ParamValue GreedyMutation(const ParamValue& v, const ParamValue& target,
                            const DistRange& dist);

  ParamSpace space_;
  Shape shape_;
  FuzzConfig config_;
  Rng rng_;
  uint64_t campaign_seed_;

  std::deque<TestCandidate> queue_;
  std::unordered_set<std::string> enqueued_or_evaluated_;
  ClusterStore useful_clusters_;
  ClusterStore non_useful_clusters_;
  double epsilon_ = 1.0;
  int round_ = 0;        // Restart epoch (bumped by RandomRestart).
  int round_index_ = 0;  // Candidates enqueued in the current epoch.
  int64_t next_seq_ = 0;
};

}  // namespace kondo

#endif  // KONDO_FUZZ_FUZZ_SCHEDULE_H_
