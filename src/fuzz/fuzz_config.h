#ifndef KONDO_FUZZ_FUZZ_CONFIG_H_
#define KONDO_FUZZ_FUZZ_CONFIG_H_

#include <cstdint>

namespace kondo {

/// An inclusive [lo, hi] magnitude interval for mutation frames.
struct DistRange {
  double lo = 0.0;
  double hi = 0.0;
};

/// Fuzz-schedule configuration (the fuzzing entries of Fig. 5), with the
/// default values used in the paper's evaluation (Section V-B).
struct FuzzConfig {
  /// `stop_iter`: terminate after this many iterations without a new offset.
  int stop_iter = 500;

  /// `max_iter`: maximum schedule iterations (each evaluates one seed).
  int max_iter = 2000;

  /// `diameter`: cluster diameter for ADD_TO_CLUSTER.
  double diameter = 20.0;

  /// `u_reps` / `n_reps`: mutations produced per useful / non-useful seed.
  int u_reps = 8;
  int n_reps = 5;

  /// `u_dist` / `n_dist`: per-dimension frame magnitude intervals for
  /// useful / non-useful seeds.
  DistRange u_dist{5.0, 15.0};
  DistRange n_dist{30.0, 50.0};

  /// `restart`: iterations between random restarts of the seed queue.
  int restart = 300;

  /// `decay_iter` / `decay`: ε is multiplied by `decay` every `decay_iter`
  /// iterations; with probability ε the plain exploit/explore mutation is
  /// used, otherwise the boundary-based one.
  int decay_iter = 200;
  double decay = 0.97;

  /// Initial ε. Setting decay to 1.0 (and ε to 1.0) disables boundary-based
  /// mutations entirely — the plain exploit-and-explore schedule of
  /// Section IV-A1, used as the contrast in Fig. 4.
  double epsilon0 = 1.0;

  /// Number of uniformly sampled seeds injected at start and on restarts
  /// (the `n` of Figure 3).
  int init_seeds = 10;

  /// Optional wall-clock budget in seconds (0 = unlimited). Section V-C
  /// gives every tool the same per-program budget.
  double max_seconds = 0.0;

  /// Optional evaluation-count budget (0 = unlimited): stop once this many
  /// debloat tests have been *consumed*. Unlike `max_seconds`, the check
  /// runs at serial candidate-consumption time, so a budgeted campaign is
  /// bit-identical at every `--jobs` setting.
  int64_t max_evals = 0;

  /// Total attempts per debloat test before its parameter point is
  /// quarantined (1 = fail fast). Retries run in place on the owning
  /// worker (see RetryPolicy), so schedules stay jobs-invariant.
  int test_max_attempts = 1;

  /// Base busy-wait backoff between attempts, doubling per retry.
  int64_t test_backoff_micros = 0;

  /// Returns a config running the plain exploit-and-explore schedule.
  static FuzzConfig PlainExploitExplore() {
    FuzzConfig config;
    config.epsilon0 = 1.0;
    config.decay = 1.0;
    config.restart = 1 << 30;  // No random restarts in the plain schedule.
    return config;
  }
};

}  // namespace kondo

#endif  // KONDO_FUZZ_FUZZ_CONFIG_H_
