#ifndef KONDO_FUZZ_PARAM_SPACE_H_
#define KONDO_FUZZ_PARAM_SPACE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.h"

namespace kondo {

/// A parameter value `v = (v_1, ..., v_m)` (Section III).
using ParamValue = std::vector<double>;

/// The supported range Θ_i of one input parameter variable.
struct ParamRange {
  double lo = 0.0;
  double hi = 0.0;
  /// Integer-valued parameters are sampled and mutated on the integer grid.
  bool integer = true;

  /// Number of distinct values (integer ranges only; 0 for real ranges).
  double Cardinality() const { return integer ? (hi - lo + 1.0) : 0.0; }
};

/// The parameter space `Θ = (Θ_1, ..., Θ_m)` the container creator
/// advertises. Provides sampling, clamping, membership, and the valuation
/// count used to size brute-force baselines.
class ParamSpace {
 public:
  ParamSpace() = default;
  ParamSpace(std::initializer_list<ParamRange> ranges) : ranges_(ranges) {}
  explicit ParamSpace(std::vector<ParamRange> ranges)
      : ranges_(std::move(ranges)) {}

  int num_params() const { return static_cast<int>(ranges_.size()); }
  const ParamRange& range(int i) const { return ranges_[i]; }
  const std::vector<ParamRange>& ranges() const { return ranges_; }

  /// Uniform sample from Θ (integer dims on the grid).
  ParamValue Sample(Rng& rng) const;

  /// True when v ∈ Θ (with integer dims on-grid up to rounding).
  bool Contains(const ParamValue& v) const;

  /// Projects `v` back into Θ: clamps each coordinate and rounds integer
  /// dims to the grid.
  ParamValue Clamp(ParamValue v) const;

  /// |Θ| for all-integer spaces (as a double to tolerate huge spaces);
  /// +inf when any dimension is real-valued.
  double NumValuations() const;

  /// Stable deduplication key: integer dims exactly, real dims quantised to
  /// a fine grid. Two values with equal keys are treated as the same seed.
  std::string QuantizeKey(const ParamValue& v) const;

  /// Renders e.g. "[0-30, 300.00-1200.00, 0-50]".
  std::string ToString() const;

 private:
  std::vector<ParamRange> ranges_;
};

/// Euclidean distance between parameter values.
double ParamDistance(const ParamValue& a, const ParamValue& b);

}  // namespace kondo

#endif  // KONDO_FUZZ_PARAM_SPACE_H_
