#include "fuzz/cluster.h"

#include <limits>

namespace kondo {

int ClusterStore::Add(const ParamValue& v, double diameter) {
  double distance = 0.0;
  const int nearest = Nearest(v, &distance);
  if (nearest < 0 || distance > diameter) {
    clusters_.push_back(Cluster{v, 1});
    return static_cast<int>(clusters_.size()) - 1;
  }
  // Join the nearest cluster; the centre tracks the running mean of its
  // members so later joins see the cluster's true location.
  Cluster& cluster = clusters_[static_cast<size_t>(nearest)];
  ++cluster.count;
  const double weight = 1.0 / static_cast<double>(cluster.count);
  for (size_t i = 0; i < v.size(); ++i) {
    cluster.center[i] += (v[i] - cluster.center[i]) * weight;
  }
  return nearest;
}

int ClusterStore::Nearest(const ParamValue& v, double* distance) const {
  int best = -1;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < clusters_.size(); ++i) {
    const double d = ParamDistance(v, clusters_[i].center);
    if (d < best_distance) {
      best_distance = d;
      best = static_cast<int>(i);
    }
  }
  if (distance != nullptr) {
    *distance = best_distance;
  }
  return best;
}

}  // namespace kondo
