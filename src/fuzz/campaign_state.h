#ifndef KONDO_FUZZ_CAMPAIGN_STATE_H_
#define KONDO_FUZZ_CAMPAIGN_STATE_H_

#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "fuzz/fuzz_schedule.h"

namespace kondo {

/// A persisted fuzz campaign: the evaluated seeds with their usefulness
/// labels and the discovered index subset. Kondo's architecture (Fig. 3)
/// feeds "both the n parameter values and the set of indices" into the
/// Fuzzer; persisting them lets a later session extend a campaign (more
/// iterations, a different carver configuration, the AFL top-up of §VI)
/// without re-running the original debloat tests.
struct CampaignState {
  Shape shape;                 // Data array shape of the campaign.
  std::vector<Seed> seeds;     // Evaluated parameter values + labels.
  IndexSet discovered;         // Union of the audited index subsets.
};

/// Serialises a campaign to a text file (one header line, one line per
/// seed, one line per discovered linear id). Text keeps the state
/// greppable and diffable; campaigns are small (thousands of entries).
Status SaveCampaignState(const std::string& path, const CampaignState& state);

/// Parses a file written by SaveCampaignState.
StatusOr<CampaignState> LoadCampaignState(const std::string& path);

/// Builds the persistable state from a finished fuzz run.
CampaignState MakeCampaignState(const Shape& shape, const FuzzResult& result);

/// Merges `extra` into `base`: seed lists concatenate (duplicates kept —
/// they witness schedule behaviour) and discovered sets union. Shapes must
/// match.
void MergeCampaignState(CampaignState* base, const CampaignState& extra);

}  // namespace kondo

#endif  // KONDO_FUZZ_CAMPAIGN_STATE_H_
