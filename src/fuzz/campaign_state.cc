#include "fuzz/campaign_state.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace kondo {

Status SaveCampaignState(const std::string& path,
                         const CampaignState& state) {
  std::ofstream out(path);
  if (!out) {
    return InternalError("cannot open campaign state for write: " + path);
  }
  // Header: KCS1 <rank> <dim...>
  out << "KCS1 " << state.shape.rank();
  for (int d = 0; d < state.shape.rank(); ++d) {
    out << " " << state.shape.dim(d);
  }
  out << "\n";
  // Seeds: S <useful> <v...> with full double precision.
  for (const Seed& seed : state.seeds) {
    out << "S " << (seed.useful ? 1 : 0);
    for (double v : seed.value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " %.17g", v);
      out << buf;
    }
    out << "\n";
  }
  // Discovered ids: I <linear>, sorted for reproducible files.
  for (int64_t id : state.discovered.ToSortedLinearIds()) {
    out << "I " << id << "\n";
  }
  if (!out.good()) {
    return InternalError("campaign state write failed: " + path);
  }
  return OkStatus();
}

StatusOr<CampaignState> LoadCampaignState(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open campaign state: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return DataLossError("empty campaign state: " + path);
  }
  std::istringstream header(line);
  std::string magic;
  int rank = 0;
  header >> magic >> rank;
  if (magic != "KCS1" || rank < 1 || rank > kMaxRank) {
    return DataLossError("bad campaign state header: " + path);
  }
  std::vector<int64_t> dims(static_cast<size_t>(rank));
  for (int64_t& dim : dims) {
    if (!(header >> dim) || dim <= 0) {
      return DataLossError("bad campaign state dims: " + path);
    }
  }

  CampaignState state;
  state.shape = Shape(dims);
  state.discovered = IndexSet(state.shape);
  const int64_t num_elements = state.shape.NumElements();
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'S') {
      int useful = 0;
      fields >> useful;
      Seed seed;
      seed.useful = useful != 0;
      double v = 0.0;
      while (fields >> v) {
        seed.value.push_back(v);
      }
      state.seeds.push_back(std::move(seed));
    } else if (tag == 'I') {
      int64_t id = -1;
      if (!(fields >> id) || id < 0 || id >= num_elements) {
        return DataLossError("bad discovered id in campaign state: " + line);
      }
      state.discovered.InsertLinear(id);
    } else {
      return DataLossError("unknown campaign state line: " + line);
    }
  }
  return state;
}

CampaignState MakeCampaignState(const Shape& shape,
                                const FuzzResult& result) {
  CampaignState state;
  state.shape = shape;
  state.seeds = result.seeds;
  state.discovered = result.discovered;
  return state;
}

void MergeCampaignState(CampaignState* base, const CampaignState& extra) {
  KONDO_CHECK(base->shape == extra.shape);
  base->seeds.insert(base->seeds.end(), extra.seeds.begin(),
                     extra.seeds.end());
  base->discovered.Union(extra.discovered);
}

}  // namespace kondo
