#ifndef KONDO_FLEET_FLEET_PROTOCOL_H_
#define KONDO_FLEET_FLEET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "array/shape.h"
#include "common/statusor.h"
#include "fuzz/fuzz_config.h"
#include "shard/shard_plan.h"

namespace kondo {

/// Payloads of the KPC fleet worker verbs (serve/kpc.h: kHello, kRunShard,
/// kShardResult, kHeartbeat). Wire layout follows the KPC conventions —
/// little-endian fixed-width integers, u32 length-prefixed strings — and is
/// specified field by field in docs/FORMATS.md.
///
/// The conversation on a worker connection:
///
///   coordinator -> worker   kHello(WorkerHello)        campaign spec
///   worker -> coordinator   kHello(WorkerHelloAck)     program validated
///   repeat:
///     coordinator -> worker kRunShard(RunShardRequest) one shard
///     worker -> coordinator kHeartbeat(HeartbeatMsg)*  liveness while busy
///     worker -> coordinator kShardResult(ShardResultMsg)
///
/// Any side may send kError(KpcError) instead of its next frame; the
/// connection is then done. A worker serves shards until the coordinator
/// closes the connection.

/// kHello, coordinator -> worker: everything a worker needs to replay the
/// campaign schedule bit-identically — the registry program name, its
/// extent override, and the full fuzz configuration plus RNG seed. Carve
/// parameters are *not* shipped: carving happens at the coordinator's
/// merge, never on workers.
struct WorkerHello {
  std::string program;  // Registry name ("STORM", "CLIMATE", ...).
  int64_t extent = 0;   // Grid-extent override; 0 = program default.
  uint64_t rng_seed = 1;
  FuzzConfig fuzz;

  std::string Encode() const;
  static StatusOr<WorkerHello> Decode(std::string_view payload);
};

/// kHello, worker -> coordinator: the worker instantiated the program and
/// echoes its file geometry, so a coordinator whose plan was built against
/// different shapes (wrong binary, wrong extent) fails the handshake
/// instead of merging nonsense.
struct WorkerHelloAck {
  std::string program;
  std::vector<Shape> file_shapes;

  std::string Encode() const;
  static StatusOr<WorkerHelloAck> Decode(std::string_view payload);
};

/// kRunShard, coordinator -> worker: one shard assignment — the shard id
/// (which names every artefact) and the slices it owns. The worker rebuilds
/// the plan-lite geometry (shapes, offsets, combined space) from its own
/// program instance; only the ownership map crosses the wire.
struct RunShardRequest {
  int shard = 0;
  std::vector<ShardSlice> slices;

  std::string Encode() const;
  static StatusOr<RunShardRequest> Decode(std::string_view payload);
};

/// kHeartbeat, worker -> coordinator: sent periodically while the shard
/// campaign runs, so the coordinator's receive timeout distinguishes a
/// long-running worker from a dead or wedged one.
struct HeartbeatMsg {
  int shard = 0;
  int64_t sequence = 0;  // Monotonic per shard, starting at 0.

  std::string Encode() const;
  static StatusOr<HeartbeatMsg> Decode(std::string_view payload);
};

/// kShardResult, worker -> coordinator: the shard's sealed artefacts as
/// complete file images — the KSS state (checksum trailer included, its
/// `A` line fingerprinting the store) and the KEL2 lineage store bytes.
/// The coordinator verifies both fingerprints before anything touches the
/// campaign directory.
struct ShardResultMsg {
  int shard = 0;
  std::string kss;
  std::string kel2;

  std::string Encode() const;
  static StatusOr<ShardResultMsg> Decode(std::string_view payload);
};

}  // namespace kondo

#endif  // KONDO_FLEET_FLEET_PROTOCOL_H_
