#ifndef KONDO_FLEET_FLEET_WORKER_H_
#define KONDO_FLEET_FLEET_WORKER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "common/env.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "fleet/fleet_protocol.h"
#include "workloads/multi_file_program.h"

namespace kondo {

struct KpcFrame;  // serve/kpc.h — only the .cc needs the full protocol.

/// Instantiates the program a WorkerHello names. The default resolves the
/// workloads registry: multi-file programs first, then single-file programs
/// wrapped in a SingleFileProgramAdapter. Tests and benches substitute
/// factories that add latency models or refuse names.
using FleetProgramFactory =
    std::function<std::unique_ptr<MultiFileProgram>(const std::string& name,
                                                    int64_t extent)>;

/// The registry-backed default factory (nullptr for unknown names).
std::unique_ptr<MultiFileProgram> CreateFleetProgram(const std::string& name,
                                                     int64_t extent);

struct FleetWorkerOptions {
  /// Where to listen: unix-domain path or loopback TCP port (0 picks one;
  /// bound_address() reports it).
  SocketAddress address;

  /// Scratch directory for in-flight per-shard lineage stores (created on
  /// Start). Artefacts here are transient: the sealed bytes ship to the
  /// coordinator and nothing on the worker is part of the campaign.
  std::string scratch_dir = ".";

  /// Campaign executor width for debloat tests.
  int jobs = 1;

  /// Liveness cadence while a shard campaign runs. 0 suppresses heartbeats
  /// entirely — with a stalled result this makes the worker an intentional
  /// straggler, which is how the coordinator's timeout path is tested.
  int64_t heartbeat_micros = 100'000;

  /// Test knob: a blocking wait inserted before each kShardResult frame,
  /// after heartbeats have stopped, so a coordinator with a shorter
  /// receive timeout observes a straggler deterministically.
  int64_t result_stall_micros = 0;

  /// Socket seam; nullptr = real sockets. Tests wrap this in a
  /// FaultInjectingNetEnv to kill a worker's connection mid-shard.
  NetEnv* net = nullptr;

  /// Filesystem seam for scratch lineage writes; nullptr = real.
  Env* env = nullptr;

  /// Program instantiation; nullptr = CreateFleetProgram.
  FleetProgramFactory program_factory;
};

/// A fleet worker process body: listens for a coordinator, answers the
/// kHello handshake, and serves kRunShard assignments — each one a full
/// RunShardCampaign whose sealed KSS + KEL2 bytes stream back in a
/// kShardResult frame. While a campaign runs, a heartbeat thread writes
/// kHeartbeat frames (serialised with the result writes) so the
/// coordinator can tell busy from dead.
///
/// Threading: one accept thread plus one thread per coordinator session;
/// each session runs its campaigns inline and owns a short-lived heartbeat
/// thread per shard. Stop() (idempotent, also run by the destructor) shuts
/// the listener, wakes blocked sessions, and joins everything.
class FleetWorker {
 public:
  explicit FleetWorker(FleetWorkerOptions options);
  ~FleetWorker();

  FleetWorker(const FleetWorker&) = delete;
  FleetWorker& operator=(const FleetWorker&) = delete;

  /// Creates the scratch directory, binds, listens, starts accepting.
  Status Start();

  /// Stops accepting, drains sessions, joins all threads.
  void Stop();

  /// The listen address with any port-0 resolved. Valid after Start().
  const SocketAddress& bound_address() const { return bound_address_; }

  /// Shard campaigns completed and shipped since Start().
  int64_t shards_served() const KONDO_EXCLUDES(mu_);

 private:
  struct Session {
    int64_t id = 0;
    /// Write half is guarded by send_mu — every WriteKpcFrame on this
    /// connection sits inside a `MutexLock lock(send_mu)` scope (the R5
    /// lock-order audit verifies all four sites). The read half is not:
    /// only the session thread calls ReadKpcFrame, concurrently with
    /// heartbeat writes, which Connection supports by design. That split
    /// is why this is a comment and not KONDO_PT_GUARDED_BY(send_mu) —
    /// the annotation would demand the lock for the lock-free reads too.
    std::unique_ptr<Connection> conn;
    std::thread thread;  // Constructed under mu_ so Stop() can join it.

    /// Campaign spec from this session's kHello (null until hello'd);
    /// written and read by the session thread only, never under a lock.
    std::unique_ptr<MultiFileProgram> program;
    ShardPlan plan;  // Plan-lite: shapes + offsets, no shard list.
    FuzzConfig fuzz;
    uint64_t rng_seed = 1;

    /// Serialises kHeartbeat frames against kShardResult/kError writes.
    Mutex send_mu;
    int64_t frames_sent KONDO_GUARDED_BY(send_mu) = 0;
  };

  void AcceptLoop();
  void SessionLoop(Session* session);

  /// Dispatches one request frame; a returned error drops the session.
  Status Dispatch(Session* session, const KpcFrame& frame);
  Status HandleHello(Session* session, const KpcFrame& frame);
  Status HandleRunShard(Session* session, const KpcFrame& frame);

  /// Runs shard `request` and returns the sealed result message.
  StatusOr<ShardResultMsg> RunAssignedShard(Session* session,
                                            const RunShardRequest& request);

  bool Stopping() const KONDO_EXCLUDES(mu_);

  const FleetWorkerOptions options_;
  std::unique_ptr<ListenSocket> listener_;
  SocketAddress bound_address_;
  std::thread accept_thread_;

  mutable Mutex mu_;
  bool started_ KONDO_GUARDED_BY(mu_) = false;
  bool stopping_ KONDO_GUARDED_BY(mu_) = false;
  int64_t next_session_id_ KONDO_GUARDED_BY(mu_) = 1;
  int64_t shards_served_ KONDO_GUARDED_BY(mu_) = 0;
  std::list<std::unique_ptr<Session>> sessions_ KONDO_GUARDED_BY(mu_);
};

}  // namespace kondo

#endif  // KONDO_FLEET_FLEET_WORKER_H_
