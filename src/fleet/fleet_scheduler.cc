#include "fleet/fleet_scheduler.h"

#include <deque>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "provenance/crc32.h"
#include "serve/kpc.h"
#include "shard/merge_stage.h"
#include "shard/shard_campaign.h"
#include "shard/shard_manifest.h"

namespace kondo {
namespace {

std::string JoinPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name;
}

/// Shared dispatch state of one fleet run. Worker threads take shards from
/// `pending`, mirror every transition into the manifest, and wake each
/// other through `cv` — a retired worker requeues its shard, so a waiting
/// peer always observes either new work or a drained campaign.
struct FleetState {
  Mutex mu;
  CondVar cv;
  std::deque<int> pending KONDO_GUARDED_BY(mu);
  int in_flight KONDO_GUARDED_BY(mu) = 0;
  int committed_now KONDO_GUARDED_BY(mu) = 0;
  Status fatal KONDO_GUARDED_BY(mu);
  Status last_worker_error KONDO_GUARDED_BY(mu);
};

/// One connected, handshaken worker endpoint and the thread driving it.
struct FleetWorkerLink {
  SocketAddress address;
  std::unique_ptr<Connection> conn;
  std::thread thread;
};

/// Connects to `address` and runs the kHello handshake, failing a worker
/// whose echoed file geometry differs from the coordinator's plan.
StatusOr<std::unique_ptr<Connection>> HandshakeWorker(
    NetEnv* net, const SocketAddress& address, const WorkerHello& hello,
    const std::vector<Shape>& file_shapes, int64_t timeout_micros) {
  KONDO_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                         net->Connect(address));
  KONDO_RETURN_IF_ERROR(conn->SetRecvTimeout(timeout_micros));
  KONDO_RETURN_IF_ERROR(
      WriteKpcFrame(*conn, KpcKind::kHello, hello.Encode()));
  KONDO_ASSIGN_OR_RETURN(KpcFrame frame, ReadKpcFrame(*conn));
  if (frame.kind == KpcKind::kError) {
    KONDO_ASSIGN_OR_RETURN(KpcError error, KpcError::Decode(frame.payload));
    return error.ToStatus();
  }
  if (frame.kind != KpcKind::kHello) {
    return DataLossError(
        StrCat("unexpected handshake frame kind from worker ",
               address.ToString(), ": ", static_cast<int>(frame.kind)));
  }
  KONDO_ASSIGN_OR_RETURN(WorkerHelloAck ack,
                         WorkerHelloAck::Decode(frame.payload));
  if (ack.file_shapes != file_shapes) {
    return FailedPreconditionError(
        StrCat("worker ", address.ToString(), " instantiated '", ack.program,
               "' with a different file geometry than the plan"));
  }
  return conn;
}

/// Dispatches shard `s` on `conn` and blocks for its result, tolerating
/// any number of heartbeats in between. Every read is bounded by the
/// connection's receive timeout; an expiry surfaces as kResourceExhausted
/// — the straggler signal — and EOF / torn frames as kOutOfRange /
/// kDataLoss, all of which the caller treats as "this worker is lost".
StatusOr<ShardCampaignResult> RunShardOnWorker(Connection& conn,
                                               const ShardPlan& plan, int s,
                                               const std::string& output_dir,
                                               Env* env) {
  RunShardRequest request;
  request.shard = s;
  request.slices = plan.shards[static_cast<size_t>(s)].slices;
  KONDO_RETURN_IF_ERROR(
      WriteKpcFrame(conn, KpcKind::kRunShard, request.Encode()));
  while (true) {
    KONDO_ASSIGN_OR_RETURN(KpcFrame frame, ReadKpcFrame(conn));
    if (frame.kind == KpcKind::kHeartbeat) {
      KONDO_ASSIGN_OR_RETURN(HeartbeatMsg beat,
                             HeartbeatMsg::Decode(frame.payload));
      if (beat.shard != s) {
        return DataLossError(StrCat("heartbeat for shard ", beat.shard,
                                    " while shard ", s, " is in flight"));
      }
      continue;  // Liveness only; the read re-armed the timeout.
    }
    if (frame.kind == KpcKind::kError) {
      KONDO_ASSIGN_OR_RETURN(KpcError error,
                             KpcError::Decode(frame.payload));
      return error.ToStatus();
    }
    if (frame.kind != KpcKind::kShardResult) {
      return DataLossError(
          StrCat("unexpected frame kind while awaiting shard ", s, ": ",
                 static_cast<int>(frame.kind)));
    }
    KONDO_ASSIGN_OR_RETURN(ShardResultMsg result,
                           ShardResultMsg::Decode(frame.payload));
    if (result.shard != s) {
      return DataLossError(StrCat("result for shard ", result.shard,
                                  " while shard ", s, " is in flight"));
    }
    return CommitShardResult(output_dir, plan, result, env);
  }
}

}  // namespace

StatusOr<ShardCampaignResult> CommitShardResult(const std::string& output_dir,
                                                const ShardPlan& plan,
                                                const ShardResultMsg& result,
                                                Env* env) {
  const std::string source =
      StrCat("worker result for shard ", result.shard);
  ShardArtifactInfo info;
  KONDO_ASSIGN_OR_RETURN(
      ShardCampaignResult decoded,
      DecodeShardState(result.kss, source, result.shard, plan.file_shapes,
                       &info));
  if (info.lineage_bytes < 0) {
    return DataLossError(StrCat(source, " carries no lineage fingerprint"));
  }
  if (info.lineage_bytes != static_cast<int64_t>(result.kel2.size()) ||
      info.lineage_crc != Crc32(result.kel2.data(), result.kel2.size())) {
    return DataLossError(
        StrCat(source, ": delivered lineage store does not match the KSS "
                       "fingerprint"));
  }

  // Duplicate tolerance: a shard may complete twice (a requeued dispatch
  // racing a straggler's late result). Artefacts are pure functions of
  // (program, plan, config), so agreement on the fingerprint makes the
  // duplicate a no-op and disagreement a determinism violation.
  const std::string state_path =
      JoinPath(output_dir, ShardStateFileName(result.shard));
  ShardArtifactInfo existing;
  StatusOr<ShardCampaignResult> committed =
      LoadShardState(state_path, result.shard, plan.file_shapes, &existing);
  if (committed.ok()) {
    if (existing.lineage_bytes == info.lineage_bytes &&
        existing.lineage_crc == info.lineage_crc) {
      return decoded;
    }
    return InternalError(
        StrCat("duplicate completion for shard ", result.shard,
               " disagrees with the committed artefact fingerprint"));
  }

  // Commit the store first, then the state that vouches for it — the same
  // order the local scheduler uses, so a crash between the two leaves a
  // pending shard, never a state file fingerprinting a missing store.
  {
    StatusOr<AtomicFile> file = AtomicFile::Create(
        JoinPath(output_dir, ShardLineageFileName(result.shard)), env);
    KONDO_RETURN_IF_ERROR(file.status());
    KONDO_RETURN_IF_ERROR(file->Append(result.kel2));
    KONDO_RETURN_IF_ERROR(file->Commit());
  }
  StatusOr<AtomicFile> file = AtomicFile::Create(state_path, env);
  KONDO_RETURN_IF_ERROR(file.status());
  KONDO_RETURN_IF_ERROR(file->Append(result.kss));
  KONDO_RETURN_IF_ERROR(file->Commit());
  return decoded;
}

StatusOr<ShardedRunResult> RunFleetCampaign(const MultiFileProgram& program,
                                            const KondoConfig& config,
                                            const FleetOptions& options) {
  if (options.output_dir.empty()) {
    return InvalidArgumentError(
        "a fleet campaign requires a campaign directory");
  }
  if (options.workers.empty()) {
    return InvalidArgumentError(
        "a fleet campaign requires at least one worker endpoint");
  }

  std::vector<Shape> file_shapes;
  file_shapes.reserve(static_cast<size_t>(program.num_files()));
  for (int f = 0; f < program.num_files(); ++f) {
    file_shapes.push_back(program.file_shape(f));
  }
  KONDO_ASSIGN_OR_RETURN(
      ShardPlan plan,
      PlanShards(file_shapes, options.shards, options.plan_weights));

  KONDO_RETURN_IF_ERROR(EnsureCampaignDirectory(options.output_dir));
  const std::string manifest_path =
      JoinPath(options.output_dir, kShardManifestFileName);
  ShardManifest manifest = MakeShardManifest(plan, config.rng_seed);
  {
    StatusOr<ShardManifest> loaded = LoadShardManifest(manifest_path);
    if (loaded.ok()) {
      KONDO_RETURN_IF_ERROR(
          CheckManifestMatchesPlan(*loaded, plan, config.rng_seed));
      manifest = std::move(*loaded);
    } else if (loaded.status().code() == StatusCode::kNotFound) {
      KONDO_RETURN_IF_ERROR(
          SaveShardManifest(manifest_path, manifest, options.env));
    } else {
      return loaded.status();
    }
  }

  std::vector<ShardCampaignResult> results(
      static_cast<size_t>(plan.num_shards()));
  std::vector<char> have(static_cast<size_t>(plan.num_shards()), 0);

  // Resume re-verification — the same demote-and-rerun rule the local
  // scheduler applies (see LoadVerifiedShard).
  bool demoted = false;
  for (int s = 0; s < manifest.num_shards(); ++s) {
    if (manifest.statuses[static_cast<size_t>(s)] != ShardStatus::kFuzzed) {
      continue;
    }
    StatusOr<ShardCampaignResult> loaded =
        LoadVerifiedShard(options.output_dir, s, plan);
    if (!loaded.ok()) {
      KONDO_LOG(Warning) << "shard " << s
                         << " failed resume verification, re-running: "
                         << loaded.status();
      manifest.statuses[static_cast<size_t>(s)] = ShardStatus::kPending;
      manifest.merged = false;
      demoted = true;
      continue;
    }
    results[static_cast<size_t>(s)] = std::move(*loaded);
    have[static_cast<size_t>(s)] = 1;
  }
  if (demoted) {
    KONDO_RETURN_IF_ERROR(
        SaveShardManifest(manifest_path, manifest, options.env));
  }

  FleetState state;
  for (int s = 0; s < manifest.num_shards(); ++s) {
    if (manifest.statuses[static_cast<size_t>(s)] == ShardStatus::kPending) {
      state.pending.push_back(s);
    }
  }

  if (!state.pending.empty()) {
    NetEnv* net = options.net != nullptr ? options.net : NetEnv::Default();
    WorkerHello hello;
    hello.program = std::string(program.name());
    hello.extent = options.program_extent;
    hello.rng_seed = config.rng_seed;
    hello.fuzz = config.fuzz;

    std::vector<std::unique_ptr<FleetWorkerLink>> links;
    Status last_connect_error;
    for (const SocketAddress& address : options.workers) {
      StatusOr<std::unique_ptr<Connection>> conn =
          HandshakeWorker(net, address, hello, file_shapes,
                          options.heartbeat_timeout_micros);
      if (!conn.ok()) {
        KONDO_LOG(Warning) << "fleet worker " << address.ToString()
                           << " failed the handshake, skipping: "
                           << conn.status();
        last_connect_error = conn.status();
        continue;
      }
      auto link = std::make_unique<FleetWorkerLink>();
      link->address = address;
      link->conn = std::move(*conn);
      links.push_back(std::move(link));
    }
    if (links.empty()) {
      return Status(last_connect_error.code(),
                    StrCat("no fleet worker completed the handshake: ",
                           last_connect_error.message()));
    }

    const auto worker_loop = [&plan, &manifest, &manifest_path, &results,
                              &have, &state,
                              &options](FleetWorkerLink* link) {
      while (true) {
        int s = -1;
        {
          MutexLock lock(state.mu);
          while (state.pending.empty() && state.in_flight > 0 &&
                 state.fatal.ok()) {
            state.cv.Wait(state.mu);
          }
          if (!state.fatal.ok() || state.pending.empty()) {
            return;  // Fatal error, or every shard is committed.
          }
          s = state.pending.front();
          state.pending.pop_front();
          const int dispatches =
              manifest.dispatch_counts[static_cast<size_t>(s)];
          if (dispatches >= options.max_dispatches) {
            state.fatal = InternalError(StrCat(
                "shard ", s, " exhausted its dispatch budget (",
                dispatches, " dispatches): last worker error: ",
                state.last_worker_error.message()));
            state.cv.NotifyAll();
            return;
          }
          manifest.dispatch_counts[static_cast<size_t>(s)] = dispatches + 1;
          ++state.in_flight;
          const Status saved =
              SaveShardManifest(manifest_path, manifest, options.env);
          if (!saved.ok()) {
            state.fatal = saved;
            state.cv.NotifyAll();
            return;
          }
        }

        StatusOr<ShardCampaignResult> run = RunShardOnWorker(
            *link->conn, plan, s, options.output_dir, options.env);

        MutexLock lock(state.mu);
        --state.in_flight;
        if (!run.ok()) {
          // Straggler timeout, crash, torn stream, or worker-reported
          // failure: requeue the shard for a surviving worker and retire
          // this connection — exactly how resume demotes a damaged shard.
          KONDO_LOG(Warning) << "fleet worker " << link->address.ToString()
                             << " lost on shard " << s << ": "
                             << run.status();
          state.last_worker_error = run.status();
          state.pending.push_back(s);
          state.cv.NotifyAll();
          return;
        }
        results[static_cast<size_t>(s)] = std::move(*run);
        have[static_cast<size_t>(s)] = 1;
        manifest.statuses[static_cast<size_t>(s)] = ShardStatus::kFuzzed;
        ++state.committed_now;
        const Status saved =
            SaveShardManifest(manifest_path, manifest, options.env);
        if (!saved.ok() && state.fatal.ok()) {
          state.fatal = saved;
        }
        state.cv.NotifyAll();
      }
    };

    for (const std::unique_ptr<FleetWorkerLink>& link : links) {
      link->thread = std::thread(worker_loop, link.get());
    }
    for (const std::unique_ptr<FleetWorkerLink>& link : links) {
      link->thread.join();
    }

    MutexLock lock(state.mu);
    if (!state.fatal.ok()) {
      return state.fatal;
    }
    if (!state.pending.empty()) {
      return Status(
          state.last_worker_error.code(),
          StrCat("all fleet workers were lost with ", state.pending.size(),
                 " shard(s) pending (progress is preserved in ",
                 manifest_path,
                 "): ", state.last_worker_error.message()));
    }
  }

  ShardedRunResult out;
  out.shards_total = plan.num_shards();
  {
    MutexLock lock(state.mu);
    out.shards_fuzzed_now = state.committed_now;
  }

  // Shards fuzzed by earlier invocations merge from their state files;
  // shards committed just now merge from memory.
  for (int s = 0; s < plan.num_shards(); ++s) {
    if (!have[static_cast<size_t>(s)]) {
      KONDO_ASSIGN_OR_RETURN(
          results[static_cast<size_t>(s)],
          LoadShardState(JoinPath(options.output_dir, ShardStateFileName(s)),
                         s, plan.file_shapes));
    }
  }

  CampaignExecutor merge_executor(ClampJobs(config.jobs));
  KONDO_ASSIGN_OR_RETURN(
      out.merged,
      MergeShardCampaigns(plan, results, config, merge_executor));
  std::vector<std::string> shard_paths;
  shard_paths.reserve(static_cast<size_t>(plan.num_shards()));
  for (int s = 0; s < plan.num_shards(); ++s) {
    shard_paths.push_back(
        JoinPath(options.output_dir, ShardLineageFileName(s)));
  }
  out.merged_lineage_path =
      JoinPath(options.output_dir, kMergedLineageFileName);
  Kel2WriterOptions merge_options;
  merge_options.env = options.env;
  KONDO_RETURN_IF_ERROR(MergeShardLineageStores(
      shard_paths, out.merged_lineage_path, merge_options));
  manifest.merged = true;
  KONDO_RETURN_IF_ERROR(
      SaveShardManifest(manifest_path, manifest, options.env));
  out.complete = true;
  return out;
}

}  // namespace kondo
