#include "fleet/fleet_worker.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "core/kondo.h"
#include "exec/campaign_executor.h"
#include "provenance/crc32.h"
#include "provenance/persist.h"
#include "serve/kpc.h"
#include "shard/shard_campaign.h"
#include "shard/shard_manifest.h"
#include "shard/shard_scheduler.h"
#include "workloads/registry.h"

namespace kondo {
namespace {

/// Sleeps in 1ms slices until `total_micros` elapse or `cancel` returns
/// true — a blocking wait (not a busy one), polled so Stop() is never held
/// hostage by a long stall.
template <typename CancelFn>
void InterruptibleSleep(int64_t total_micros, const CancelFn& cancel) {
  constexpr int64_t kSliceMicros = 1000;
  for (int64_t waited = 0; waited < total_micros && !cancel();
       waited += kSliceMicros) {
    std::this_thread::sleep_for(std::chrono::microseconds(kSliceMicros));
  }
}

}  // namespace

std::unique_ptr<MultiFileProgram> CreateFleetProgram(const std::string& name,
                                                     int64_t extent) {
  std::unique_ptr<MultiFileProgram> multi =
      CreateMultiFileProgram(name, extent);
  if (multi != nullptr) {
    return multi;
  }
  std::unique_ptr<Program> single = CreateProgram(name, extent);
  if (single == nullptr) {
    return nullptr;
  }
  return std::make_unique<SingleFileProgramAdapter>(std::move(single));
}

FleetWorker::FleetWorker(FleetWorkerOptions options)
    : options_(std::move(options)) {}

FleetWorker::~FleetWorker() { Stop(); }

Status FleetWorker::Start() {
  {
    MutexLock lock(mu_);
    if (started_) {
      return FailedPreconditionError("fleet worker already started");
    }
    started_ = true;
  }
  KONDO_RETURN_IF_ERROR(EnsureCampaignDirectory(options_.scratch_dir));
  NetEnv* net = options_.net != nullptr ? options_.net : NetEnv::Default();
  KONDO_ASSIGN_OR_RETURN(listener_, net->Listen(options_.address));
  bound_address_ = listener_->address();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void FleetWorker::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_ || stopping_) {
      return;
    }
    stopping_ = true;
  }
  if (listener_ != nullptr) {
    listener_->Shutdown();
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::list<std::unique_ptr<Session>> sessions;
  {
    MutexLock lock(mu_);
    sessions.swap(sessions_);
  }
  for (const std::unique_ptr<Session>& session : sessions) {
    session->conn->ShutdownRead();
  }
  for (const std::unique_ptr<Session>& session : sessions) {
    if (session->thread.joinable()) {
      session->thread.join();
    }
  }
}

int64_t FleetWorker::shards_served() const {
  MutexLock lock(mu_);
  return shards_served_;
}

bool FleetWorker::Stopping() const {
  MutexLock lock(mu_);
  return stopping_;
}

void FleetWorker::AcceptLoop() {
  while (true) {
    StatusOr<std::unique_ptr<Connection>> conn = listener_->Accept();
    if (!conn.ok()) {
      return;  // Listener shut down (or fatally broken): stop accepting.
    }
    auto session = std::make_unique<Session>();
    session->conn = std::move(*conn);
    Session* raw = session.get();
    // Construct the session thread while holding mu_: once the session is
    // visible in sessions_, its thread member is fully formed, so Stop()
    // (which drains the list under the same lock) can always join it.
    MutexLock lock(mu_);
    if (stopping_) {
      return;
    }
    session->id = next_session_id_++;
    session->thread = std::thread([this, raw] { SessionLoop(raw); });
    sessions_.push_back(std::move(session));
  }
}

void FleetWorker::SessionLoop(Session* session) {
  while (true) {
    StatusOr<KpcFrame> frame = ReadKpcFrame(*session->conn);
    if (!frame.ok()) {
      return;  // Orderly EOF or a torn stream: the session is over.
    }
    const Status handled = Dispatch(session, *frame);
    if (!handled.ok()) {
      KONDO_LOG(Warning) << "fleet worker session " << session->id
                         << " dropped: " << handled;
      return;
    }
  }
}

Status FleetWorker::Dispatch(Session* session, const KpcFrame& frame) {
  switch (frame.kind) {
    case KpcKind::kHello:
      return HandleHello(session, frame);
    case KpcKind::kRunShard:
      return HandleRunShard(session, frame);
    default:
      return InvalidArgumentError(
          StrCat("unexpected frame kind on worker connection: ",
                 static_cast<int>(frame.kind)));
  }
}

Status FleetWorker::HandleHello(Session* session, const KpcFrame& frame) {
  KONDO_ASSIGN_OR_RETURN(WorkerHello hello,
                         WorkerHello::Decode(frame.payload));
  FleetProgramFactory factory = options_.program_factory;
  std::unique_ptr<MultiFileProgram> program =
      factory ? factory(hello.program, hello.extent)
              : CreateFleetProgram(hello.program, hello.extent);
  if (program == nullptr) {
    const Status unknown =
        NotFoundError(StrCat("unknown fleet program: ", hello.program));
    MutexLock lock(session->send_mu);
    ++session->frames_sent;
    KONDO_RETURN_IF_ERROR(WriteKpcFrame(
        *session->conn, KpcKind::kError,
        KpcError::FromStatus(unknown).Encode()));
    return unknown;
  }

  session->plan = ShardPlan();
  session->plan.offsets.push_back(0);
  for (int f = 0; f < program->num_files(); ++f) {
    const Shape& shape = program->file_shape(f);
    session->plan.file_shapes.push_back(shape);
    session->plan.offsets.push_back(session->plan.offsets.back() +
                                    shape.NumElements());
  }
  session->fuzz = hello.fuzz;
  session->rng_seed = hello.rng_seed;
  session->program = std::move(program);

  WorkerHelloAck ack;
  ack.program = std::string(session->program->name());
  ack.file_shapes = session->plan.file_shapes;
  MutexLock lock(session->send_mu);
  ++session->frames_sent;
  return WriteKpcFrame(*session->conn, KpcKind::kHello, ack.Encode());
}

Status FleetWorker::HandleRunShard(Session* session, const KpcFrame& frame) {
  if (session->program == nullptr) {
    return FailedPreconditionError("kRunShard before kHello");
  }
  KONDO_ASSIGN_OR_RETURN(RunShardRequest request,
                         RunShardRequest::Decode(frame.payload));
  StatusOr<ShardResultMsg> result = RunAssignedShard(session, request);
  if (!result.ok()) {
    // Application failure (scratch IO, bad slices): report it and keep the
    // session — the coordinator decides whether to retire this worker.
    MutexLock lock(session->send_mu);
    ++session->frames_sent;
    return WriteKpcFrame(*session->conn, KpcKind::kError,
                         KpcError::FromStatus(result.status()).Encode());
  }
  {
    MutexLock lock(session->send_mu);
    ++session->frames_sent;
    KONDO_RETURN_IF_ERROR(WriteKpcFrame(*session->conn,
                                        KpcKind::kShardResult,
                                        result->Encode()));
  }
  MutexLock lock(mu_);
  ++shards_served_;
  return OkStatus();
}

StatusOr<ShardResultMsg> FleetWorker::RunAssignedShard(
    Session* session, const RunShardRequest& request) {
  const ShardPlan& plan = session->plan;
  for (const ShardSlice& slice : request.slices) {
    if (slice.file >= plan.num_files() ||
        slice.end >
            plan.file_shapes[static_cast<size_t>(slice.file)].NumElements()) {
      return InvalidArgumentError(
          StrCat("shard ", request.shard,
                 " slice exceeds the program's file geometry"));
    }
  }
  Shard shard;
  shard.id = request.shard;
  shard.slices = request.slices;

  char name[64];
  std::snprintf(name, sizeof(name), "w%03lld-shard-%03d.kel2",
                static_cast<long long>(session->id), request.shard);
  const std::string lineage_path = options_.scratch_dir + "/" + name;

  // Heartbeats cover exactly the campaign: started before, stopped (and
  // joined) before the result stall and the result write, so a suppressed
  // or stalled worker goes silent the way a wedged one would.
  std::atomic<bool> campaign_done{false};
  std::thread heartbeat;
  if (options_.heartbeat_micros > 0) {
    heartbeat = std::thread([this, session, &campaign_done,
                             shard_id = request.shard] {
      int64_t sequence = 0;
      while (!campaign_done.load()) {
        InterruptibleSleep(options_.heartbeat_micros,
                           [&campaign_done] { return campaign_done.load(); });
        if (campaign_done.load()) {
          return;
        }
        HeartbeatMsg beat;
        beat.shard = shard_id;
        beat.sequence = sequence++;
        MutexLock lock(session->send_mu);
        ++session->frames_sent;
        const Status sent = WriteKpcFrame(*session->conn, KpcKind::kHeartbeat,
                                          beat.Encode());
        if (!sent.ok()) {
          return;  // Peer gone; the result write will surface it.
        }
      }
    });
  }
  const auto finish_heartbeat = [&campaign_done, &heartbeat] {
    campaign_done.store(true);
    if (heartbeat.joinable()) {
      heartbeat.join();
    }
  };

  Kel2WriterOptions sink_options;
  sink_options.env = options_.env;
  StatusOr<CampaignLineageSink> sink =
      CampaignLineageSink::Create(lineage_path, sink_options);
  if (!sink.ok()) {
    finish_heartbeat();
    return sink.status();
  }
  KondoConfig config;
  config.fuzz = session->fuzz;
  config.rng_seed = session->rng_seed;
  config.jobs = options_.jobs;
  CampaignExecutor executor(options_.jobs);
  StatusOr<ShardCampaignResult> run = RunShardCampaign(
      *session->program, plan, shard, config, executor, sink->persister());
  const Status sealed = run.ok() ? sink->Close() : run.status();
  finish_heartbeat();
  KONDO_RETURN_IF_ERROR(sealed);

  std::string kel2;
  KONDO_RETURN_IF_ERROR(ReadFileToString(lineage_path, &kel2));
  ShardArtifactInfo info;
  info.lineage_bytes = static_cast<int64_t>(kel2.size());
  info.lineage_crc = Crc32(kel2.data(), kel2.size());

  ShardResultMsg result;
  result.shard = request.shard;
  result.kss = EncodeShardState(request.shard, *run, info);
  result.kel2 = std::move(kel2);

  if (options_.result_stall_micros > 0) {
    InterruptibleSleep(options_.result_stall_micros,
                       [this] { return Stopping(); });
  }
  return result;
}

}  // namespace kondo
