#ifndef KONDO_FLEET_FLEET_SCHEDULER_H_
#define KONDO_FLEET_FLEET_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/socket.h"
#include "common/statusor.h"
#include "core/kondo.h"
#include "fleet/fleet_protocol.h"
#include "shard/shard_scheduler.h"
#include "workloads/multi_file_program.h"

namespace kondo {

/// How RunFleetCampaign distributes a sharded campaign over workers.
struct FleetOptions {
  /// Requested shard count (the planner may return fewer on tiny arrays).
  int shards = 1;

  /// Campaign directory — required. The manifest here is the single source
  /// of truth: per-shard status, dispatch counts, and the sealed artefacts
  /// all live in it, and a later invocation (fleet or local) resumes from
  /// exactly this state.
  std::string output_dir;

  /// Access-density weights steering the planner (empty = element-count
  /// balancing); see ShardOptions::plan_weights.
  PlanWeights plan_weights;

  /// Worker endpoints to connect to. Unreachable or handshake-failing
  /// workers are logged and skipped; at least one must survive.
  std::vector<SocketAddress> workers;

  /// Extent override shipped to workers in the kHello (0 = program
  /// default). Must produce the coordinator's file geometry — the
  /// handshake echo check fails the worker otherwise.
  int64_t program_extent = 0;

  /// Longest silence tolerated on a dispatched worker connection before
  /// the coordinator declares it a straggler: any frame (heartbeats count)
  /// re-arms the clock. On expiry the shard is re-dispatched elsewhere and
  /// the worker is retired.
  int64_t heartbeat_timeout_micros = 10'000'000;

  /// Per-shard dispatch ceiling. A shard that keeps burning workers
  /// (dispatched this many times without a commit) fails the campaign
  /// instead of looping forever; the manifest's `W` lines carry the count
  /// across invocations.
  int max_dispatches = 3;

  /// Socket seam; nullptr = real sockets. Tests wrap a FaultInjectingNetEnv
  /// here to sever a worker connection mid-shard.
  NetEnv* net = nullptr;

  /// Filesystem seam for every committed artefact; nullptr = real.
  Env* env = nullptr;
};

/// Distributes a sharded campaign over remote workers and merges the
/// results bit-identically to the local RunShardedCampaign:
///
///  * plans shards (weighted or uniform) and reconciles the plan against
///    the campaign directory's manifest exactly like the local scheduler —
///    including demoting fuzzed shards whose artefacts fail
///    LoadVerifiedShard re-verification;
///  * handshakes every worker (kHello), failing any whose echoed file
///    geometry disagrees with the plan;
///  * dispatches pending shards over the surviving workers, one in flight
///    per connection, re-arming a receive timeout on every frame. A
///    timeout, torn stream, EOF, or worker-reported error retires that
///    worker and requeues its shard — the same demote-and-rerun rule the
///    resume path applies to damaged artefacts;
///  * commits each result through CommitShardResult (fingerprint-verified,
///    duplicate-tolerant) and records progress in the manifest after every
///    state change, so a coordinator crash resumes losslessly;
///  * merges through the shard-count-invariant MergeShardCampaigns /
///    MergeShardLineageStores, making merged.kel2 byte-identical to the
///    single-process campaign at any worker count and failure schedule.
///
/// Fails (preserving manifest progress) when every worker is lost with
/// shards still pending, or when one shard exhausts `max_dispatches`.
StatusOr<ShardedRunResult> RunFleetCampaign(const MultiFileProgram& program,
                                            const KondoConfig& config,
                                            const FleetOptions& options);

/// Verifies and commits one worker-delivered shard result into the
/// campaign directory. Verification before any write: the KSS bytes must
/// decode (checksum trailer, header, plan-consistent ids) and carry an `A`
/// fingerprint matching the delivered KEL2 bytes exactly. A duplicate
/// completion — the state file already committed — is tolerated when the
/// fingerprints agree (the commit is idempotent; nothing is rewritten) and
/// is an internal error when they disagree, since shard artefacts are pure
/// functions of (program, plan, config). Returns the decoded result.
StatusOr<ShardCampaignResult> CommitShardResult(const std::string& output_dir,
                                                const ShardPlan& plan,
                                                const ShardResultMsg& result,
                                                Env* env = nullptr);

}  // namespace kondo

#endif  // KONDO_FLEET_FLEET_SCHEDULER_H_
