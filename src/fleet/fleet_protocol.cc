#include "fleet/fleet_protocol.h"

#include <limits>

#include "common/strings.h"
#include "serve/kpc.h"

namespace kondo {
namespace {

/// Ceiling on counted collections in fleet payloads (slices, files). A
/// header claiming more is corruption: even a degenerate plan never slices
/// one shard a million ways.
constexpr uint32_t kMaxWireCount = 1u << 20;

Status ReadCount(KpcCursor& cursor, const char* what, uint32_t* count) {
  KONDO_RETURN_IF_ERROR(cursor.ReadU32(count));
  if (*count > kMaxWireCount) {
    return DataLossError(StrCat("implausible ", what, " count: ", *count));
  }
  return OkStatus();
}

Status ReadShardId(KpcCursor& cursor, int* shard) {
  int64_t value = 0;
  KONDO_RETURN_IF_ERROR(cursor.ReadI64(&value));
  if (value < 0 || value > std::numeric_limits<int>::max()) {
    return DataLossError(StrCat("bad shard id on the wire: ", value));
  }
  *shard = static_cast<int>(value);
  return OkStatus();
}

}  // namespace

std::string WorkerHello::Encode() const {
  std::string out;
  KpcAppendString(program, &out);
  KpcAppendI64(extent, &out);
  KpcAppendI64(static_cast<int64_t>(rng_seed), &out);
  KpcAppendI64(fuzz.stop_iter, &out);
  KpcAppendI64(fuzz.max_iter, &out);
  KpcAppendF64(fuzz.diameter, &out);
  KpcAppendI64(fuzz.u_reps, &out);
  KpcAppendI64(fuzz.n_reps, &out);
  KpcAppendF64(fuzz.u_dist.lo, &out);
  KpcAppendF64(fuzz.u_dist.hi, &out);
  KpcAppendF64(fuzz.n_dist.lo, &out);
  KpcAppendF64(fuzz.n_dist.hi, &out);
  KpcAppendI64(fuzz.restart, &out);
  KpcAppendI64(fuzz.decay_iter, &out);
  KpcAppendF64(fuzz.decay, &out);
  KpcAppendF64(fuzz.epsilon0, &out);
  KpcAppendI64(fuzz.init_seeds, &out);
  KpcAppendF64(fuzz.max_seconds, &out);
  KpcAppendI64(fuzz.max_evals, &out);
  KpcAppendI64(fuzz.test_max_attempts, &out);
  KpcAppendI64(fuzz.test_backoff_micros, &out);
  return out;
}

StatusOr<WorkerHello> WorkerHello::Decode(std::string_view payload) {
  KpcCursor cursor(payload);
  WorkerHello hello;
  KONDO_RETURN_IF_ERROR(cursor.ReadString(&hello.program));
  KONDO_RETURN_IF_ERROR(cursor.ReadI64(&hello.extent));
  int64_t seed = 0;
  KONDO_RETURN_IF_ERROR(cursor.ReadI64(&seed));
  hello.rng_seed = static_cast<uint64_t>(seed);
  const auto read_int = [&cursor](int* v) {
    int64_t wide = 0;
    KONDO_RETURN_IF_ERROR(cursor.ReadI64(&wide));
    *v = static_cast<int>(wide);
    return OkStatus();
  };
  KONDO_RETURN_IF_ERROR(read_int(&hello.fuzz.stop_iter));
  KONDO_RETURN_IF_ERROR(read_int(&hello.fuzz.max_iter));
  KONDO_RETURN_IF_ERROR(cursor.ReadF64(&hello.fuzz.diameter));
  KONDO_RETURN_IF_ERROR(read_int(&hello.fuzz.u_reps));
  KONDO_RETURN_IF_ERROR(read_int(&hello.fuzz.n_reps));
  KONDO_RETURN_IF_ERROR(cursor.ReadF64(&hello.fuzz.u_dist.lo));
  KONDO_RETURN_IF_ERROR(cursor.ReadF64(&hello.fuzz.u_dist.hi));
  KONDO_RETURN_IF_ERROR(cursor.ReadF64(&hello.fuzz.n_dist.lo));
  KONDO_RETURN_IF_ERROR(cursor.ReadF64(&hello.fuzz.n_dist.hi));
  KONDO_RETURN_IF_ERROR(read_int(&hello.fuzz.restart));
  KONDO_RETURN_IF_ERROR(read_int(&hello.fuzz.decay_iter));
  KONDO_RETURN_IF_ERROR(cursor.ReadF64(&hello.fuzz.decay));
  KONDO_RETURN_IF_ERROR(cursor.ReadF64(&hello.fuzz.epsilon0));
  KONDO_RETURN_IF_ERROR(read_int(&hello.fuzz.init_seeds));
  KONDO_RETURN_IF_ERROR(cursor.ReadF64(&hello.fuzz.max_seconds));
  KONDO_RETURN_IF_ERROR(cursor.ReadI64(&hello.fuzz.max_evals));
  KONDO_RETURN_IF_ERROR(read_int(&hello.fuzz.test_max_attempts));
  KONDO_RETURN_IF_ERROR(cursor.ReadI64(&hello.fuzz.test_backoff_micros));
  KONDO_RETURN_IF_ERROR(cursor.Done());
  return hello;
}

std::string WorkerHelloAck::Encode() const {
  std::string out;
  KpcAppendString(program, &out);
  KpcAppendU32(static_cast<uint32_t>(file_shapes.size()), &out);
  for (const Shape& shape : file_shapes) {
    KpcAppendU32(static_cast<uint32_t>(shape.rank()), &out);
    for (int d = 0; d < shape.rank(); ++d) {
      KpcAppendI64(shape.dim(d), &out);
    }
  }
  return out;
}

StatusOr<WorkerHelloAck> WorkerHelloAck::Decode(std::string_view payload) {
  KpcCursor cursor(payload);
  WorkerHelloAck ack;
  KONDO_RETURN_IF_ERROR(cursor.ReadString(&ack.program));
  uint32_t files = 0;
  KONDO_RETURN_IF_ERROR(ReadCount(cursor, "file", &files));
  ack.file_shapes.reserve(files);
  for (uint32_t f = 0; f < files; ++f) {
    uint32_t rank = 0;
    KONDO_RETURN_IF_ERROR(cursor.ReadU32(&rank));
    if (rank == 0 || rank > 3) {
      return DataLossError(StrCat("bad file rank on the wire: ", rank));
    }
    std::vector<int64_t> dims(rank);
    for (int64_t& dim : dims) {
      KONDO_RETURN_IF_ERROR(cursor.ReadI64(&dim));
      if (dim <= 0) {
        return DataLossError(StrCat("bad file dim on the wire: ", dim));
      }
    }
    ack.file_shapes.emplace_back(dims);
  }
  KONDO_RETURN_IF_ERROR(cursor.Done());
  return ack;
}

std::string RunShardRequest::Encode() const {
  std::string out;
  KpcAppendI64(shard, &out);
  KpcAppendU32(static_cast<uint32_t>(slices.size()), &out);
  for (const ShardSlice& slice : slices) {
    KpcAppendI64(slice.file, &out);
    KpcAppendI64(slice.begin, &out);
    KpcAppendI64(slice.end, &out);
  }
  return out;
}

StatusOr<RunShardRequest> RunShardRequest::Decode(std::string_view payload) {
  KpcCursor cursor(payload);
  RunShardRequest request;
  KONDO_RETURN_IF_ERROR(ReadShardId(cursor, &request.shard));
  uint32_t slices = 0;
  KONDO_RETURN_IF_ERROR(ReadCount(cursor, "slice", &slices));
  request.slices.reserve(slices);
  for (uint32_t i = 0; i < slices; ++i) {
    ShardSlice slice;
    int64_t file = 0;
    KONDO_RETURN_IF_ERROR(cursor.ReadI64(&file));
    KONDO_RETURN_IF_ERROR(cursor.ReadI64(&slice.begin));
    KONDO_RETURN_IF_ERROR(cursor.ReadI64(&slice.end));
    if (file < 0 || slice.begin < 0 || slice.end <= slice.begin) {
      return DataLossError("bad shard slice on the wire");
    }
    slice.file = static_cast<int>(file);
    request.slices.push_back(slice);
  }
  KONDO_RETURN_IF_ERROR(cursor.Done());
  return request;
}

std::string HeartbeatMsg::Encode() const {
  std::string out;
  KpcAppendI64(shard, &out);
  KpcAppendI64(sequence, &out);
  return out;
}

StatusOr<HeartbeatMsg> HeartbeatMsg::Decode(std::string_view payload) {
  KpcCursor cursor(payload);
  HeartbeatMsg heartbeat;
  KONDO_RETURN_IF_ERROR(ReadShardId(cursor, &heartbeat.shard));
  KONDO_RETURN_IF_ERROR(cursor.ReadI64(&heartbeat.sequence));
  KONDO_RETURN_IF_ERROR(cursor.Done());
  return heartbeat;
}

std::string ShardResultMsg::Encode() const {
  std::string out;
  KpcAppendI64(shard, &out);
  KpcAppendString(kss, &out);
  KpcAppendString(kel2, &out);
  return out;
}

StatusOr<ShardResultMsg> ShardResultMsg::Decode(std::string_view payload) {
  KpcCursor cursor(payload);
  ShardResultMsg result;
  KONDO_RETURN_IF_ERROR(ReadShardId(cursor, &result.shard));
  KONDO_RETURN_IF_ERROR(cursor.ReadString(&result.kss));
  KONDO_RETURN_IF_ERROR(cursor.ReadString(&result.kel2));
  KONDO_RETURN_IF_ERROR(cursor.Done());
  return result;
}

}  // namespace kondo
