#include "pack/chunk_codec.h"

#include <cstring>

#include "common/status.h"
#include "provenance/varint.h"

namespace kondo {
namespace {

/// Reads the retained value at packed position `i` of the decoded payload
/// back at its integer width (sign-extended to i64).
int64_t IntValueAt(const std::string& decoded, int64_t bitmap_bytes,
                   int64_t elem_size, int64_t i) {
  const char* buf = decoded.data() + bitmap_bytes + i * elem_size;
  if (elem_size == 4) {
    int32_t v = 0;
    std::memcpy(&v, buf, 4);
    return v;
  }
  int64_t v = 0;
  std::memcpy(&v, buf, 8);
  return v;
}

}  // namespace

KdpCodec PreferredKdpCodec(DType dtype) {
  switch (dtype) {
    case DType::kInt32:
    case DType::kInt64:
      return KdpCodec::kDeltaVarint;
    case DType::kFloat32:
    case DType::kFloat64:
    case DType::kFloat128:
      return KdpCodec::kBytePlane;
  }
  return KdpCodec::kRaw;
}

std::string EncodeChunkPayload(KdpCodec codec, DType dtype, int64_t elements,
                               const std::string& decoded) {
  const int64_t bitmap_bytes = KdpBitmapBytes(elements);
  const int64_t elem_size = DTypeSize(dtype);
  const int64_t values =
      (static_cast<int64_t>(decoded.size()) - bitmap_bytes) / elem_size;
  std::string out;
  out.append(decoded.data(), static_cast<size_t>(bitmap_bytes));

  if (codec == KdpCodec::kDeltaVarint) {
    int64_t previous = 0;
    for (int64_t i = 0; i < values; ++i) {
      const int64_t value = IntValueAt(decoded, bitmap_bytes, elem_size, i);
      AppendSignedVarint(value - previous, &out);
      previous = value;
    }
    return out;
  }

  // Byte-plane RLE: emit plane p of every value, then plane p+1, ...  The
  // plane stream is tokenised as varint controls: low bit 1 = repeat run of
  // (control >> 1) copies of the following byte, low bit 0 = literal run of
  // (control >> 1) verbatim bytes. Long runs (zero pads, shared exponents)
  // collapse to ~3 bytes regardless of length, while entropy planes
  // (mantissas) pay only ~1 byte of framing per literal run instead of
  // doubling under a pairs-only encoding.
  const char* value_base = decoded.data() + bitmap_bytes;
  const int64_t plane_bytes = values * elem_size;
  std::string planes;
  planes.reserve(static_cast<size_t>(plane_bytes));
  for (int64_t plane = 0; plane < elem_size; ++plane) {
    for (int64_t i = 0; i < values; ++i) {
      planes.push_back(value_base[i * elem_size + plane]);
    }
  }
  std::string literal;
  const auto flush_literal = [&out, &literal] {
    if (literal.empty()) {
      return;
    }
    AppendVarint(static_cast<uint64_t>(literal.size()) << 1, &out);
    out += literal;
    literal.clear();
  };
  int64_t pos = 0;
  while (pos < plane_bytes) {
    int64_t run = 1;
    while (pos + run < plane_bytes && planes[static_cast<size_t>(pos + run)] ==
                                          planes[static_cast<size_t>(pos)]) {
      ++run;
    }
    if (run >= 4) {  // A repeat token costs 2-3 bytes; shorter runs go
                     // literal.
      flush_literal();
      AppendVarint((static_cast<uint64_t>(run) << 1) | 1, &out);
      out.push_back(planes[static_cast<size_t>(pos)]);
    } else {
      literal.append(planes, static_cast<size_t>(pos),
                     static_cast<size_t>(run));
    }
    pos += run;
  }
  flush_literal();
  return out;
}

StatusOr<std::string> DecodeChunkPayload(KdpCodec codec, DType dtype,
                                         int64_t elements,
                                         int64_t decoded_bytes,
                                         const std::string& encoded) {
  const int64_t bitmap_bytes = KdpBitmapBytes(elements);
  const int64_t elem_size = DTypeSize(dtype);
  if (decoded_bytes < bitmap_bytes ||
      (decoded_bytes - bitmap_bytes) % elem_size != 0) {
    return DataLossError("KDP chunk: decoded size inconsistent with the "
                         "chunk geometry");
  }
  const int64_t values = (decoded_bytes - bitmap_bytes) / elem_size;

  if (codec == KdpCodec::kRaw) {
    if (static_cast<int64_t>(encoded.size()) != decoded_bytes) {
      return DataLossError("KDP chunk: raw payload size mismatch");
    }
    return encoded;
  }
  if (static_cast<int64_t>(encoded.size()) < bitmap_bytes) {
    return DataLossError("KDP chunk: truncated bitmap");
  }

  std::string out;
  out.reserve(static_cast<size_t>(decoded_bytes));
  out.append(encoded.data(), static_cast<size_t>(bitmap_bytes));

  if (codec == KdpCodec::kDeltaVarint) {
    VarintReader reader(encoded.data() + bitmap_bytes,
                        encoded.size() - static_cast<size_t>(bitmap_bytes));
    int64_t previous = 0;
    char buf[8];
    for (int64_t i = 0; i < values; ++i) {
      int64_t delta = 0;
      if (!reader.NextSigned(&delta)) {
        return DataLossError("KDP chunk: truncated delta-varint stream");
      }
      previous += delta;
      if (elem_size == 4) {
        const int32_t v = static_cast<int32_t>(previous);
        std::memcpy(buf, &v, 4);
        out.append(buf, 4);
      } else {
        std::memcpy(buf, &previous, 8);
        out.append(buf, 8);
      }
    }
    if (!reader.AtEnd()) {
      return DataLossError("KDP chunk: trailing bytes after the value "
                           "stream");
    }
    return out;
  }

  if (codec != KdpCodec::kBytePlane) {
    return DataLossError("KDP chunk: codec does not match any decoder");
  }
  // Reconstruct the plane-major byte sequence, then transpose back.
  const int64_t plane_bytes = values * elem_size;
  std::string planes;
  planes.reserve(static_cast<size_t>(plane_bytes));
  VarintReader reader(encoded.data() + bitmap_bytes,
                      encoded.size() - static_cast<size_t>(bitmap_bytes));
  while (static_cast<int64_t>(planes.size()) < plane_bytes) {
    uint64_t control = 0;
    if (!reader.Next(&control)) {
      return DataLossError("KDP chunk: truncated byte-plane stream");
    }
    const uint64_t count = control >> 1;
    if (count == 0 ||
        count > static_cast<uint64_t>(plane_bytes) - planes.size()) {
      return DataLossError("KDP chunk: invalid byte-plane run");
    }
    if ((control & 1) != 0) {  // Repeat run: one byte, `count` copies.
      uint8_t byte = 0;
      if (!reader.NextByte(&byte)) {
        return DataLossError("KDP chunk: truncated byte-plane repeat run");
      }
      planes.append(static_cast<size_t>(count), static_cast<char>(byte));
    } else {  // Literal run: `count` verbatim bytes.
      for (uint64_t i = 0; i < count; ++i) {
        uint8_t byte = 0;
        if (!reader.NextByte(&byte)) {
          return DataLossError("KDP chunk: truncated byte-plane literal "
                               "run");
        }
        planes.push_back(static_cast<char>(byte));
      }
    }
  }
  if (!reader.AtEnd()) {
    return DataLossError("KDP chunk: trailing bytes after the plane "
                         "stream");
  }
  out.resize(static_cast<size_t>(decoded_bytes));
  char* value_base = out.data() + bitmap_bytes;
  for (int64_t plane = 0; plane < elem_size; ++plane) {
    for (int64_t i = 0; i < values; ++i) {
      value_base[i * elem_size + plane] = planes[static_cast<size_t>(
          plane * values + i)];
    }
  }
  return out;
}

}  // namespace kondo
