#include "pack/pack_writer.h"

#include <cstring>
#include <memory>
#include <utility>

#include "array/kdf_file.h"
#include "common/status.h"
#include "exec/campaign_executor.h"
#include "pack/chunk_codec.h"
#include "pack/pack_reader.h"
#include "provenance/crc32.h"

namespace kondo {
namespace {

/// One chunk's encoding outcome, held in a per-chunk slot so the codec fan
/// -out stays jobs-invariant: slots are filled in any order and appended in
/// chunk order.
struct EncodedChunk {
  KdpCodec codec = KdpCodec::kHole;
  std::string encoded;
  int64_t decoded_bytes = 0;
  uint32_t crc = 0;
  bool reused = false;  // Repack copied the encoded bytes verbatim.
};

/// Gathers chunk `chunk`'s decoded payload from `array`: the membership
/// bitmap over the chunk's in-bounds elements followed by the retained
/// elements' on-disk bytes. `*retained` receives the chunk's popcount.
std::string GatherChunkPayload(const KdpChunkGrid& grid, int64_t chunk,
                               const DebloatedArray& array,
                               int64_t* retained) {
  const int64_t elements = grid.ChunkElements(chunk);
  const int64_t bitmap_bytes = KdpBitmapBytes(elements);
  const int64_t elem_size = DTypeSize(array.dtype());
  std::string decoded(static_cast<size_t>(bitmap_bytes), '\0');
  decoded.reserve(static_cast<size_t>(bitmap_bytes + elements * elem_size));
  char buf[16];
  int64_t pos = 0;
  int64_t count = 0;
  grid.ForEachChunkElement(chunk, [&](const Index& index) {
    if (array.IsRetained(index)) {
      decoded[static_cast<size_t>(pos / 8)] = static_cast<char>(
          static_cast<uint8_t>(decoded[static_cast<size_t>(pos / 8)]) |
          (1u << (pos % 8)));
      EncodeElement(array.At(index).value(), array.dtype(), buf);
      decoded.append(buf, static_cast<size_t>(elem_size));
      ++count;
    }
    ++pos;
  });
  *retained = count;
  return decoded;
}

/// Encodes one gathered chunk: hole when empty, otherwise the dtype's
/// preferred codec with a raw fallback when coding does not shrink it.
EncodedChunk EncodeOneChunk(DType dtype, int64_t elements,
                            std::string decoded, int64_t retained) {
  EncodedChunk out;
  if (retained == 0) {
    return out;  // Hole: zero payload bytes.
  }
  out.decoded_bytes = static_cast<int64_t>(decoded.size());
  out.crc = Crc32(decoded.data(), decoded.size());
  const KdpCodec preferred = PreferredKdpCodec(dtype);
  std::string coded = EncodeChunkPayload(preferred, dtype, elements, decoded);
  if (coded.size() < decoded.size()) {
    out.codec = preferred;
    out.encoded = std::move(coded);
  } else {
    out.codec = KdpCodec::kRaw;
    out.encoded = std::move(decoded);
  }
  return out;
}

/// Assembles the manifest from the encoded chunks and commits the package
/// atomically: header | payloads (chunk order) | manifest | trailer.
StatusOr<PackStats> CommitKdp(const std::string& path, DType dtype,
                              const Shape& shape,
                              const std::vector<int64_t>& chunk_dims,
                              const std::vector<EncodedChunk>& chunks,
                              Env* env) {
  KdpManifest manifest;
  manifest.dtype = dtype;
  manifest.shape = shape;
  manifest.chunk_dims = chunk_dims;
  manifest.chunks.resize(chunks.size());

  PackStats stats;
  stats.total_chunks = static_cast<int64_t>(chunks.size());
  int64_t offset = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    const EncodedChunk& chunk = chunks[c];
    KdpChunkInfo& info = manifest.chunks[c];
    info.codec = chunk.codec;
    if (chunk.codec == KdpCodec::kHole) {
      ++stats.hole_chunks;
      continue;
    }
    info.offset = offset;
    info.encoded_bytes = static_cast<int64_t>(chunk.encoded.size());
    info.decoded_bytes = chunk.decoded_bytes;
    info.crc32 = chunk.crc;
    offset += info.encoded_bytes;
    stats.decoded_bytes += info.decoded_bytes;
    stats.encoded_bytes += info.encoded_bytes;
    if (chunk.codec == KdpCodec::kRaw) {
      ++stats.raw_chunks;
    } else {
      ++stats.coded_chunks;
    }
    if (chunk.reused) {
      ++stats.chunks_reused;
    }
  }

  const std::string header = EncodeKdpHeader(manifest);
  const std::string table = EncodeKdpManifest(manifest);
  uint32_t file_crc = Crc32(header.data(), header.size());
  file_crc = Crc32Update(file_crc, table.data(), table.size());

  KONDO_ASSIGN_OR_RETURN(AtomicFile file, AtomicFile::Create(path, env));
  KONDO_RETURN_IF_ERROR(file.Append(header));
  for (const EncodedChunk& chunk : chunks) {
    if (chunk.codec != KdpCodec::kHole) {
      KONDO_RETURN_IF_ERROR(file.Append(chunk.encoded));
    }
  }
  KONDO_RETURN_IF_ERROR(file.Append(table));
  KONDO_RETURN_IF_ERROR(file.Append(EncodeKdpTrailer(
      static_cast<int64_t>(header.size()) + offset,
      static_cast<int64_t>(chunks.size()), file_crc)));
  KONDO_RETURN_IF_ERROR(file.Commit());
  stats.file_bytes = file.bytes_appended();
  return stats;
}

/// Resolves the executor the chunk codecs run on: the shared pool when one
/// is provided, otherwise a private `jobs`-wide pool for this call.
CampaignExecutor MakeExecutor(const PackOptions& options) {
  if (options.pool != nullptr) {
    return CampaignExecutor(options.pool, options.jobs);
  }
  return CampaignExecutor(options.jobs);
}

Status ValidateChunkDims(const Shape& shape,
                         const std::vector<int64_t>& chunk_dims) {
  if (static_cast<int>(chunk_dims.size()) != shape.rank()) {
    return InvalidArgumentError("pack chunk dims rank does not match the "
                                "array shape");
  }
  for (int64_t dim : chunk_dims) {
    if (dim <= 0) {
      return InvalidArgumentError("pack chunk dims must be positive");
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<PackStats> WriteKdpFile(const std::string& path,
                                 const DebloatedArray& array,
                                 const PackOptions& options) {
  std::vector<int64_t> chunk_dims = options.chunk_dims;
  if (chunk_dims.empty()) {
    chunk_dims = DefaultKdpChunkDims(array.shape());
  }
  KONDO_RETURN_IF_ERROR(ValidateChunkDims(array.shape(), chunk_dims));

  const KdpChunkGrid grid(array.shape(), chunk_dims);
  const int64_t n = grid.num_chunks();
  std::vector<EncodedChunk> chunks(static_cast<size_t>(n));
  CampaignExecutor executor = MakeExecutor(options);
  executor.ParallelFor(n, [&](int64_t c) {
    int64_t retained = 0;
    std::string decoded = GatherChunkPayload(grid, c, array, &retained);
    chunks[static_cast<size_t>(c)] = EncodeOneChunk(
        array.dtype(), grid.ChunkElements(c), std::move(decoded), retained);
  });

  return CommitKdp(path, array.dtype(), array.shape(), chunk_dims, chunks,
                   options.env);
}

StatusOr<PackStats> RepackKdpFile(const std::string& in_path,
                                  const std::string& out_path,
                                  const DebloatedArray& updated,
                                  const PackOptions& options) {
  KONDO_ASSIGN_OR_RETURN(std::unique_ptr<PackReader> reader,
                         PackReader::Open(in_path));
  const KdpManifest& old = reader->manifest();
  if (!(old.shape == updated.shape())) {
    return FailedPreconditionError(
        "repack: array shape " + updated.shape().ToString() +
        " does not match the package (" + old.shape.ToString() + ")");
  }
  if (old.dtype != updated.dtype()) {
    return FailedPreconditionError(
        "repack: array dtype does not match the package");
  }

  // The existing grid is kept so reuse is chunk-for-chunk; a deterministic
  // codec then makes the output byte-identical to a fresh pack.
  const KdpChunkGrid& grid = reader->grid();
  const int64_t n = grid.num_chunks();
  std::vector<EncodedChunk> chunks(static_cast<size_t>(n));
  std::vector<Status> read_errors(static_cast<size_t>(n), OkStatus());
  CampaignExecutor executor = MakeExecutor(options);
  executor.ParallelFor(n, [&](int64_t c) {
    EncodedChunk& slot = chunks[static_cast<size_t>(c)];
    int64_t retained = 0;
    std::string decoded = GatherChunkPayload(grid, c, updated, &retained);
    const KdpChunkInfo& info = old.chunks[static_cast<size_t>(c)];
    if (retained == 0) {
      slot.reused = info.codec == KdpCodec::kHole;  // Hole stayed a hole.
      return;
    }
    const uint32_t crc = Crc32(decoded.data(), decoded.size());
    if (info.codec != KdpCodec::kHole &&
        info.decoded_bytes == static_cast<int64_t>(decoded.size()) &&
        info.crc32 == crc) {
      // Clean chunk: copy the encoded bytes without decoding them.
      StatusOr<std::string> encoded = reader->ReadEncodedChunk(c);
      if (!encoded.ok()) {
        read_errors[static_cast<size_t>(c)] = encoded.status();
        return;
      }
      slot.codec = info.codec;
      slot.encoded = *std::move(encoded);
      slot.decoded_bytes = info.decoded_bytes;
      slot.crc = crc;
      slot.reused = true;
      return;
    }
    slot = EncodeOneChunk(updated.dtype(), grid.ChunkElements(c),
                          std::move(decoded), retained);
  });
  for (const Status& status : read_errors) {
    KONDO_RETURN_IF_ERROR(status);
  }

  KONDO_ASSIGN_OR_RETURN(
      PackStats stats,
      CommitKdp(out_path, updated.dtype(), updated.shape(), grid.chunk_dims(),
                chunks, options.env));
  int64_t reused = 0;
  for (const EncodedChunk& chunk : chunks) {
    if (chunk.reused) {
      ++reused;
    }
  }
  stats.chunks_reused = reused;
  stats.chunks_reencoded = stats.total_chunks - reused;
  return stats;
}

}  // namespace kondo
