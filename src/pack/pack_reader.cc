#include "pack/pack_reader.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "array/data_array.h"
#include "array/index_set.h"
#include "array/kdf_file.h"
#include "common/status.h"
#include "exec/campaign_executor.h"
#include "pack/chunk_codec.h"
#include "provenance/crc32.h"

namespace kondo {
namespace {

/// True when bit `local` of the chunk's membership bitmap is set.
bool BitmapTest(const std::string& payload, int64_t local) {
  return (static_cast<uint8_t>(payload[static_cast<size_t>(local / 8)]) >>
          (local % 8)) &
         1;
}

/// Number of set bitmap bits in [0, local) — the packed position of the
/// retained element at `local`.
int64_t BitmapRank(const std::string& payload, int64_t local) {
  int64_t rank = 0;
  const int64_t full_bytes = local / 8;
  for (int64_t b = 0; b < full_bytes; ++b) {
    rank += std::popcount(
        static_cast<unsigned>(static_cast<uint8_t>(payload[b])));
  }
  const int bits = static_cast<int>(local % 8);
  if (bits > 0) {
    const uint8_t byte = static_cast<uint8_t>(payload[full_bytes]);
    rank += std::popcount(static_cast<unsigned>(byte & ((1u << bits) - 1)));
  }
  return rank;
}

}  // namespace

StatusOr<std::unique_ptr<PackReader>> PackReader::Open(
    const std::string& path, const PackReadOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return NotFoundError("cannot open KDP package: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return NotFoundError("cannot stat KDP package: " + path);
  }
  const int64_t file_bytes = static_cast<int64_t>(st.st_size);

  std::unique_ptr<PackReader> reader;
  {
    // Minimal fixed header: enough to learn the rank, which sizes the rest.
    char fixed[8];
    if (file_bytes < 8 + kKdpTrailerBytes ||
        ::pread(fd, fixed, 8, 0) != 8 ||
        std::memcmp(fixed, kKdpMagic, 4) != 0) {
      ::close(fd);
      return DataLossError("not a KDP package (short file or bad magic): " +
                           path);
    }
    const int rank = static_cast<uint8_t>(fixed[6]);
    const int64_t header_bytes = 8 + 16 * rank;
    if (rank < 1 || rank > kMaxRank ||
        file_bytes < header_bytes + kKdpTrailerBytes) {
      ::close(fd);
      return DataLossError("KDP header: bad rank or truncated file: " + path);
    }

    std::string header(static_cast<size_t>(header_bytes), '\0');
    std::string tail(static_cast<size_t>(kKdpTrailerBytes), '\0');
    if (::pread(fd, header.data(), header.size(), 0) !=
            static_cast<ssize_t>(header.size()) ||
        ::pread(fd, tail.data(), tail.size(),
                file_bytes - kKdpTrailerBytes) !=
            static_cast<ssize_t>(tail.size())) {
      ::close(fd);
      return DataLossError("KDP package: short read: " + path);
    }
    StatusOr<KdpTrailer> trailer = DecodeKdpTrailer(tail, file_bytes);
    if (!trailer.ok()) {
      ::close(fd);
      return trailer.status();
    }
    std::string table(
        static_cast<size_t>(trailer->num_chunks * kKdpManifestEntryBytes),
        '\0');
    if (::pread(fd, table.data(), table.size(), trailer->manifest_offset) !=
        static_cast<ssize_t>(table.size())) {
      ::close(fd);
      return DataLossError("KDP manifest: short read: " + path);
    }
    StatusOr<KdpManifest> manifest =
        DecodeKdpManifest(header, table, *trailer);
    if (!manifest.ok()) {
      ::close(fd);
      return manifest.status();
    }
    reader.reset(
        new PackReader(fd, path, *std::move(manifest), options));
    reader->file_bytes_ = file_bytes;
  }

  // Per-chunk geometry check the manifest decoder cannot do (it has no
  // grid element counts): decoded bytes must be bitmap + whole elements,
  // which also yields the retained count without decoding anything.
  const int64_t elem_size = DTypeSize(reader->dtype());
  for (int64_t c = 0; c < reader->grid_.num_chunks(); ++c) {
    const KdpChunkInfo& info = reader->manifest_.chunks[static_cast<size_t>(c)];
    if (info.codec == KdpCodec::kHole) {
      continue;
    }
    const int64_t bitmap_bytes = KdpBitmapBytes(reader->grid_.ChunkElements(c));
    const int64_t value_bytes = info.decoded_bytes - bitmap_bytes;
    if (value_bytes < 0 || value_bytes % elem_size != 0 ||
        value_bytes / elem_size > reader->grid_.ChunkElements(c)) {
      return DataLossError("KDP manifest: chunk " + std::to_string(c) +
                           ": decoded size inconsistent with the chunk "
                           "geometry");
    }
    reader->retained_count_ += value_bytes / elem_size;
  }
  return reader;
}

PackReader::PackReader(int fd, std::string path, KdpManifest manifest,
                       PackReadOptions options)
    : fd_(fd),
      path_(std::move(path)),
      manifest_(std::move(manifest)),
      grid_(manifest_.MakeGrid()),
      options_(options) {}

PackReader::~PackReader() {
  ::close(fd_);
}

Status PackReader::ReadRaw(int64_t offset, int64_t size, char* buf) const {
  int64_t total = 0;
  while (total < size) {
    const ssize_t n = ::pread(fd_, buf + total,
                              static_cast<size_t>(size - total),
                              offset + total);
    if (n < 0) {
      return InternalError("pread failed: " + path_);
    }
    if (n == 0) {
      return DataLossError("KDP package: read past EOF: " + path_);
    }
    total += n;
  }
  return OkStatus();
}

StatusOr<std::string> PackReader::DecodeChunkUncached(int64_t chunk) const {
  const KdpChunkInfo& info = manifest_.chunks[static_cast<size_t>(chunk)];
  const int64_t elements = grid_.ChunkElements(chunk);
  if (options_.chunk_fetch_sleep_micros > 0) {
    // Models the cold-store fetch cost of one chunk; see PackReadOptions.
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.chunk_fetch_sleep_micros));
  }
  if (info.codec == KdpCodec::kHole) {
    return std::string(static_cast<size_t>(KdpBitmapBytes(elements)), '\0');
  }
  std::string encoded(static_cast<size_t>(info.encoded_bytes), '\0');
  KONDO_RETURN_IF_ERROR(ReadRaw(manifest_.HeaderBytes() + info.offset,
                                info.encoded_bytes, encoded.data()));
  StatusOr<std::string> decoded = DecodeChunkPayload(
      info.codec, manifest_.dtype, elements, info.decoded_bytes, encoded);
  if (!decoded.ok()) {
    return DataLossError("KDP chunk " + std::to_string(chunk) + " (" +
                         KdpCodecName(info.codec) +
                         "): " + decoded.status().message());
  }
  if (Crc32(decoded->data(), decoded->size()) != info.crc32) {
    return DataLossError("KDP chunk " + std::to_string(chunk) +
                         ": decoded payload CRC mismatch (corrupt chunk)");
  }
  return decoded;
}

StatusOr<std::shared_ptr<const std::string>> PackReader::DecodedChunk(
    int64_t chunk) {
  {
    MutexLock lock(mu_);
    auto it = cache_.find(chunk);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.payload;
    }
    ++stats_.cache_misses;
  }

  // Decode outside the lock so concurrent sessions decode different chunks
  // in parallel; a race on the same chunk wastes one decode, nothing more.
  KONDO_ASSIGN_OR_RETURN(std::string decoded, DecodeChunkUncached(chunk));
  auto payload = std::make_shared<const std::string>(std::move(decoded));

  MutexLock lock(mu_);
  ++stats_.chunks_decoded;
  auto it = cache_.find(chunk);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.payload;
  }
  lru_.push_front(chunk);
  cache_[chunk] = CacheEntry{payload, lru_.begin()};
  cached_bytes_ += static_cast<int64_t>(payload->size());
  while (cached_bytes_ > options_.cache_bytes && !lru_.empty()) {
    const int64_t victim = lru_.back();
    lru_.pop_back();
    auto victim_it = cache_.find(victim);
    cached_bytes_ -= static_cast<int64_t>(victim_it->second.payload->size());
    cache_.erase(victim_it);
    ++stats_.cache_evictions;
  }
  return payload;
}

StatusOr<double> PackReader::ReadElement(const Index& index) {
  if (!shape().Contains(index)) {
    return OutOfRangeError("index out of range for packed array of shape " +
                           shape().ToString());
  }
  const int64_t chunk = grid_.ChunkOfIndex(index);
  KONDO_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> payload,
                         DecodedChunk(chunk));
  const int64_t local = grid_.LocalPosition(index);
  if (!BitmapTest(*payload, local)) {
    return DataMissingError("element was debloated away (Null)");
  }
  const int64_t bitmap_bytes = KdpBitmapBytes(grid_.ChunkElements(chunk));
  const int64_t packed = BitmapRank(*payload, local);
  return DecodeElement(
      payload->data() + bitmap_bytes + packed * DTypeSize(dtype()), dtype());
}

Status PackReader::ReadRange(int64_t begin, int64_t end,
                             std::vector<uint8_t>* present,
                             std::vector<double>* values) {
  const int64_t total = shape().NumElements();
  if (begin < 0 || end < begin || end > total) {
    return OutOfRangeError("packed range [" + std::to_string(begin) + ", " +
                           std::to_string(end) + ") outside 0.." +
                           std::to_string(total));
  }
  present->assign(static_cast<size_t>(end - begin), 0);
  values->clear();
  int64_t current_chunk = -1;
  std::shared_ptr<const std::string> payload;
  int64_t bitmap_bytes = 0;
  const int64_t elem_size = DTypeSize(dtype());
  for (int64_t linear = begin; linear < end; ++linear) {
    const Index index = shape().Delinearize(linear);
    const int64_t chunk = grid_.ChunkOfIndex(index);
    if (chunk != current_chunk) {
      KONDO_ASSIGN_OR_RETURN(payload, DecodedChunk(chunk));
      bitmap_bytes = KdpBitmapBytes(grid_.ChunkElements(chunk));
      current_chunk = chunk;
    }
    const int64_t local = grid_.LocalPosition(index);
    if (!BitmapTest(*payload, local)) {
      continue;
    }
    (*present)[static_cast<size_t>(linear - begin)] = 1;
    const int64_t packed = BitmapRank(*payload, local);
    values->push_back(DecodeElement(
        payload->data() + bitmap_bytes + packed * elem_size, dtype()));
  }
  return OkStatus();
}

StatusOr<DebloatedArray> PackReader::Unpack(ThreadPool* pool, int jobs) {
  const int64_t n = grid_.num_chunks();
  std::vector<std::string> payloads(static_cast<size_t>(n));
  std::vector<Status> statuses(static_cast<size_t>(n), OkStatus());
  CampaignExecutor executor =
      pool != nullptr ? CampaignExecutor(pool, jobs) : CampaignExecutor(jobs);
  executor.ParallelFor(n, [&](int64_t c) {
    StatusOr<std::string> decoded = DecodeChunkUncached(c);
    if (decoded.ok()) {
      payloads[static_cast<size_t>(c)] = *std::move(decoded);
    } else {
      statuses[static_cast<size_t>(c)] = decoded.status();
    }
  });
  for (const Status& status : statuses) {
    KONDO_RETURN_IF_ERROR(status);
  }

  // Serial scatter: IndexSet is not thread-safe, and the decode above is
  // where the time goes.
  DataArray data(shape(), dtype());
  IndexSet retained(shape());
  const int64_t elem_size = DTypeSize(dtype());
  for (int64_t c = 0; c < n; ++c) {
    const std::string& payload = payloads[static_cast<size_t>(c)];
    const int64_t bitmap_bytes = KdpBitmapBytes(grid_.ChunkElements(c));
    int64_t local = 0;
    int64_t packed = 0;
    grid_.ForEachChunkElement(c, [&](const Index& index) {
      if (BitmapTest(payload, local)) {
        const int64_t linear = shape().Linearize(index);
        data.SetLinear(linear,
                       DecodeElement(payload.data() + bitmap_bytes +
                                         packed * elem_size,
                                     dtype()));
        retained.InsertLinear(linear);
        ++packed;
      }
      ++local;
    });
  }
  return DebloatedArray::FromDataArray(data, retained);
}

StatusOr<std::string> PackReader::ReadEncodedChunk(int64_t chunk) const {
  if (chunk < 0 || chunk >= grid_.num_chunks()) {
    return OutOfRangeError("chunk id " + std::to_string(chunk) +
                           " outside the chunk grid");
  }
  const KdpChunkInfo& info = manifest_.chunks[static_cast<size_t>(chunk)];
  if (info.codec == KdpCodec::kHole) {
    return std::string();
  }
  std::string encoded(static_cast<size_t>(info.encoded_bytes), '\0');
  KONDO_RETURN_IF_ERROR(ReadRaw(manifest_.HeaderBytes() + info.offset,
                                info.encoded_bytes, encoded.data()));
  return encoded;
}

PackReaderStats PackReader::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace kondo
