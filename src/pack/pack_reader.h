#ifndef KONDO_PACK_PACK_READER_H_
#define KONDO_PACK_PACK_READER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "array/debloated_array.h"
#include "array/index.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "pack/kdp_format.h"

namespace kondo {

/// Read-side knobs for PackReader.
struct PackReadOptions {
  /// Capacity of the decoded-chunk LRU cache in decoded bytes. A single
  /// chunk larger than the cap is still served, it just never stays
  /// resident.
  int64_t cache_bytes = 8 << 20;

  /// Deterministic blocking sleep (microseconds) charged per chunk decode,
  /// modelling a cold-store fetch the way ServeOptions::fetch_sleep_micros
  /// does for serve sessions. A sleep, not a busy-wait: concurrent decodes
  /// overlap their waits even on one hardware thread, which is what the
  /// parallel-unpack benchmark measures.
  int64_t chunk_fetch_sleep_micros = 0;
};

/// Decoded-chunk cache counters (monotonic over the reader's lifetime).
struct PackReaderStats {
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t chunks_decoded = 0;
};

/// Random-access reader over a KDP package. Element and range reads decode
/// only the covering chunks, keeping recently decoded payloads in a
/// byte-capacity LRU cache; Unpack() reconstructs the full DebloatedArray,
/// fanning chunk decodes out over a shared ThreadPool.
///
/// Thread-safe: reads go through pread-style positioned IO and the cache is
/// internally locked, so one PackReader may serve concurrent sessions (the
/// ArtifactPool pools open readers per artifact).
class PackReader {
 public:
  /// Opens `path`, parses trailer + manifest, and validates both (magic,
  /// CRC, chunk-table bounds). kDataLoss on any structural damage.
  static StatusOr<std::unique_ptr<PackReader>> Open(
      const std::string& path, const PackReadOptions& options = {});

  ~PackReader();
  PackReader(const PackReader&) = delete;
  PackReader& operator=(const PackReader&) = delete;

  const KdpManifest& manifest() const { return manifest_; }
  const KdpChunkGrid& grid() const { return grid_; }
  const Shape& shape() const { return manifest_.shape; }
  DType dtype() const { return manifest_.dtype; }

  /// The package fingerprint (CRC32 over header + manifest bytes) — what a
  /// subset-cache key embeds so a repack invalidates cached responses.
  uint32_t pack_fingerprint() const { return manifest_.file_crc; }

  /// Total package size in bytes.
  int64_t FileBytes() const { return file_bytes_; }

  /// Retained elements across all chunks (popcount of the chunk bitmaps,
  /// computed once at Open).
  int64_t retained_count() const { return retained_count_; }

  /// Reads the element at `index`: kDataMissing for debloated (Null)
  /// entries, kOutOfRange outside the shape. Decodes at most the one
  /// covering chunk (served from cache when warm).
  StatusOr<double> ReadElement(const Index& index);

  /// Reads the linear-id range [begin, end): `present[i]` is 1 when element
  /// begin+i is retained, and `values` receives the retained values in
  /// order (values->size() == popcount of present). Decodes only the chunks
  /// the range touches.
  Status ReadRange(int64_t begin, int64_t end, std::vector<uint8_t>* present,
                   std::vector<double>* values);

  /// Decodes every chunk and reassembles `D_Θ`. Chunk decodes fan out over
  /// `pool` (or a private pool when `pool` is null and jobs > 1); the
  /// result is byte-identical at every jobs value and to the array that was
  /// packed. Decoded chunks bypass the LRU cache — a full unpack would only
  /// evict a working set.
  StatusOr<DebloatedArray> Unpack(ThreadPool* pool = nullptr, int jobs = 1);

  /// Reads chunk `chunk`'s encoded payload bytes verbatim (no decode) —
  /// what Repack copies for clean chunks. Holes yield an empty string.
  StatusOr<std::string> ReadEncodedChunk(int64_t chunk) const;

  /// Snapshot of the cache counters.
  PackReaderStats stats() const;

 private:
  PackReader(int fd, std::string path, KdpManifest manifest,
             PackReadOptions options);

  /// Positioned read of exactly [offset, offset+size); kDataLoss on EOF.
  Status ReadRaw(int64_t offset, int64_t size, char* buf) const;

  /// Decodes chunk `chunk` (no cache, no lock), verifying the manifest CRC
  /// over the decoded bytes; the error names the chunk. Charges the
  /// fetch-sleep. Holes decode to an all-zero bitmap.
  StatusOr<std::string> DecodeChunkUncached(int64_t chunk) const;

  /// Cache-through decode of chunk `chunk`.
  StatusOr<std::shared_ptr<const std::string>> DecodedChunk(int64_t chunk);

  struct CacheEntry {
    std::shared_ptr<const std::string> payload;
    std::list<int64_t>::iterator lru_pos;
  };

  const int fd_;
  const std::string path_;
  const KdpManifest manifest_;
  const KdpChunkGrid grid_;
  const PackReadOptions options_;
  int64_t file_bytes_ = 0;
  int64_t retained_count_ = 0;

  mutable Mutex mu_;
  std::map<int64_t, CacheEntry> cache_ KONDO_GUARDED_BY(mu_);
  std::list<int64_t> lru_ KONDO_GUARDED_BY(mu_);  // Front = most recent.
  int64_t cached_bytes_ KONDO_GUARDED_BY(mu_) = 0;
  PackReaderStats stats_ KONDO_GUARDED_BY(mu_);
};

}  // namespace kondo

#endif  // KONDO_PACK_PACK_READER_H_
