#include "pack/kdp_format.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/status.h"
#include "provenance/crc32.h"

namespace kondo {
namespace {

void AppendI64(std::string* out, int64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  out->append(buf, 8);
}

void AppendU32(std::string* out, uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  out->append(buf, 4);
}

int64_t ReadI64(const char* buf) {
  int64_t value = 0;
  std::memcpy(&value, buf, 8);
  return value;
}

uint32_t ReadU32(const char* buf) {
  uint32_t value = 0;
  std::memcpy(&value, buf, 4);
  return value;
}

}  // namespace

bool IsValidKdpCodec(uint8_t value) {
  return value <= static_cast<uint8_t>(KdpCodec::kBytePlane);
}

const char* KdpCodecName(KdpCodec codec) {
  switch (codec) {
    case KdpCodec::kHole:
      return "hole";
    case KdpCodec::kRaw:
      return "raw";
    case KdpCodec::kDeltaVarint:
      return "delta-varint";
    case KdpCodec::kBytePlane:
      return "byte-plane";
  }
  return "unknown";
}

KdpChunkGrid::KdpChunkGrid(Shape shape, std::vector<int64_t> chunk_dims)
    : shape_(std::move(shape)), chunk_dims_(std::move(chunk_dims)) {
  grid_dims_.resize(chunk_dims_.size());
  for (size_t d = 0; d < chunk_dims_.size(); ++d) {
    const int64_t dim = shape_.dim(static_cast<int>(d));
    grid_dims_[d] = (dim + chunk_dims_[d] - 1) / chunk_dims_[d];
    num_chunks_ *= grid_dims_[d];
  }
}

int64_t KdpChunkGrid::ChunkOfIndex(const Index& index) const {
  int64_t chunk = 0;
  for (int d = 0; d < shape_.rank(); ++d) {
    chunk = chunk * grid_dims_[static_cast<size_t>(d)] +
            index[d] / chunk_dims_[static_cast<size_t>(d)];
  }
  return chunk;
}

int64_t KdpChunkGrid::ChunkOfLinear(int64_t linear) const {
  return ChunkOfIndex(shape_.Delinearize(linear));
}

Index KdpChunkGrid::ChunkOrigin(int64_t chunk) const {
  Index origin(shape_.rank());
  for (int d = shape_.rank() - 1; d >= 0; --d) {
    const int64_t grid = grid_dims_[static_cast<size_t>(d)];
    origin[d] = (chunk % grid) * chunk_dims_[static_cast<size_t>(d)];
    chunk /= grid;
  }
  return origin;
}

std::vector<int64_t> KdpChunkGrid::ChunkExtents(int64_t chunk) const {
  const Index origin = ChunkOrigin(chunk);
  std::vector<int64_t> extents(static_cast<size_t>(shape_.rank()));
  for (int d = 0; d < shape_.rank(); ++d) {
    extents[static_cast<size_t>(d)] =
        std::min(chunk_dims_[static_cast<size_t>(d)],
                 shape_.dim(d) - origin[d]);
  }
  return extents;
}

int64_t KdpChunkGrid::ChunkElements(int64_t chunk) const {
  int64_t elements = 1;
  for (int64_t extent : ChunkExtents(chunk)) {
    elements *= extent;
  }
  return elements;
}

int64_t KdpChunkGrid::LocalPosition(const Index& index) const {
  const int64_t chunk = ChunkOfIndex(index);
  const Index origin = ChunkOrigin(chunk);
  const std::vector<int64_t> extents = ChunkExtents(chunk);
  int64_t pos = 0;
  for (int d = 0; d < shape_.rank(); ++d) {
    pos = pos * extents[static_cast<size_t>(d)] + (index[d] - origin[d]);
  }
  return pos;
}

std::string EncodeKdpHeader(const KdpManifest& manifest) {
  std::string bytes;
  bytes.append(kKdpMagic, 4);
  bytes.push_back(static_cast<char>(kKdpVersion));
  bytes.push_back(static_cast<char>(manifest.dtype));
  bytes.push_back(static_cast<char>(manifest.shape.rank()));
  bytes.push_back(0);  // reserved
  for (int d = 0; d < manifest.shape.rank(); ++d) {
    AppendI64(&bytes, manifest.shape.dim(d));
  }
  for (int d = 0; d < manifest.shape.rank(); ++d) {
    AppendI64(&bytes, manifest.chunk_dims[static_cast<size_t>(d)]);
  }
  return bytes;
}

std::string EncodeKdpManifest(const KdpManifest& manifest) {
  std::string bytes;
  bytes.reserve(static_cast<size_t>(manifest.ManifestBytes()));
  for (const KdpChunkInfo& info : manifest.chunks) {
    bytes.push_back(static_cast<char>(info.codec));
    AppendI64(&bytes, info.offset);
    AppendI64(&bytes, info.encoded_bytes);
    AppendI64(&bytes, info.decoded_bytes);
    AppendU32(&bytes, info.crc32);
  }
  return bytes;
}

std::string EncodeKdpTrailer(int64_t manifest_offset, int64_t num_chunks,
                             uint32_t file_crc) {
  std::string bytes;
  AppendI64(&bytes, manifest_offset);
  AppendI64(&bytes, num_chunks);
  AppendU32(&bytes, file_crc);
  bytes.append(kKdpTrailerMagic, 4);
  return bytes;
}

StatusOr<KdpTrailer> DecodeKdpTrailer(const std::string& tail,
                                      int64_t file_bytes) {
  if (static_cast<int64_t>(tail.size()) != kKdpTrailerBytes) {
    return DataLossError("KDP trailer: short read");
  }
  if (std::memcmp(tail.data() + 20, kKdpTrailerMagic, 4) != 0) {
    return DataLossError("KDP trailer: bad magic (truncated or not a KDP "
                         "file)");
  }
  KdpTrailer trailer;
  trailer.manifest_offset = ReadI64(tail.data());
  trailer.num_chunks = ReadI64(tail.data() + 8);
  trailer.file_crc = ReadU32(tail.data() + 16);
  if (trailer.num_chunks < 0 || trailer.manifest_offset < 0 ||
      trailer.manifest_offset + trailer.num_chunks * kKdpManifestEntryBytes +
          kKdpTrailerBytes != file_bytes) {
    return DataLossError("KDP trailer: manifest location inconsistent with "
                         "file size");
  }
  return trailer;
}

StatusOr<KdpManifest> DecodeKdpManifest(const std::string& header,
                                        const std::string& manifest,
                                        const KdpTrailer& trailer) {
  if (header.size() < 8 || std::memcmp(header.data(), kKdpMagic, 4) != 0) {
    return DataLossError("KDP header: bad magic");
  }
  const uint8_t version = static_cast<uint8_t>(header[4]);
  if (version != kKdpVersion) {
    return DataLossError("KDP header: unsupported version " +
                         std::to_string(version));
  }
  const uint8_t dtype_raw = static_cast<uint8_t>(header[5]);
  const int rank = static_cast<uint8_t>(header[6]);
  if (!IsValidDType(dtype_raw) || rank < 1 || rank > kMaxRank) {
    return DataLossError("KDP header: bad dtype or rank");
  }
  KdpManifest result;
  result.dtype = static_cast<DType>(dtype_raw);
  if (static_cast<int64_t>(header.size()) < 8 + 16 * rank) {
    return DataLossError("KDP header: truncated dims");
  }
  std::vector<int64_t> dims(static_cast<size_t>(rank));
  result.chunk_dims.resize(static_cast<size_t>(rank));
  for (int d = 0; d < rank; ++d) {
    dims[static_cast<size_t>(d)] = ReadI64(header.data() + 8 + 8 * d);
    result.chunk_dims[static_cast<size_t>(d)] =
        ReadI64(header.data() + 8 + 8 * (rank + d));
    if (dims[static_cast<size_t>(d)] <= 0 ||
        result.chunk_dims[static_cast<size_t>(d)] <= 0) {
      return DataLossError("KDP header: non-positive dim or chunk dim");
    }
  }
  result.shape = Shape(dims);

  const int64_t header_bytes = result.HeaderBytes();
  if (trailer.manifest_offset < header_bytes) {
    return DataLossError("KDP manifest: overlaps the header");
  }
  const KdpChunkGrid grid = result.MakeGrid();
  if (trailer.num_chunks != grid.num_chunks()) {
    return DataLossError("KDP manifest: chunk count " +
                         std::to_string(trailer.num_chunks) +
                         " does not match the chunk grid (" +
                         std::to_string(grid.num_chunks()) + ")");
  }
  if (static_cast<int64_t>(manifest.size()) !=
      trailer.num_chunks * kKdpManifestEntryBytes) {
    return DataLossError("KDP manifest: short read");
  }

  uint32_t crc = Crc32(header.data(), header.size());
  crc = Crc32Update(crc, manifest.data(), manifest.size());
  if (crc != trailer.file_crc) {
    return DataLossError("KDP manifest: file CRC mismatch (corrupt header "
                         "or chunk table)");
  }

  const int64_t payload_bytes = trailer.manifest_offset - header_bytes;
  int64_t next_offset = 0;
  result.chunks.resize(static_cast<size_t>(trailer.num_chunks));
  for (int64_t c = 0; c < trailer.num_chunks; ++c) {
    const char* entry = manifest.data() + c * kKdpManifestEntryBytes;
    KdpChunkInfo& info = result.chunks[static_cast<size_t>(c)];
    const uint8_t codec_raw = static_cast<uint8_t>(entry[0]);
    if (!IsValidKdpCodec(codec_raw)) {
      return DataLossError("KDP manifest: chunk " + std::to_string(c) +
                           ": unknown codec " + std::to_string(codec_raw));
    }
    info.codec = static_cast<KdpCodec>(codec_raw);
    info.offset = ReadI64(entry + 1);
    info.encoded_bytes = ReadI64(entry + 9);
    info.decoded_bytes = ReadI64(entry + 17);
    info.crc32 = ReadU32(entry + 25);
    if (info.codec == KdpCodec::kHole) {
      if (info.encoded_bytes != 0 || info.decoded_bytes != 0) {
        return DataLossError("KDP manifest: chunk " + std::to_string(c) +
                             ": hole with payload bytes");
      }
      continue;
    }
    if (info.encoded_bytes <= 0 || info.decoded_bytes <= 0 ||
        info.offset != next_offset ||
        info.offset + info.encoded_bytes > payload_bytes) {
      return DataLossError("KDP manifest: chunk " + std::to_string(c) +
                           ": payload bounds out of order or past the "
                           "manifest");
    }
    next_offset = info.offset + info.encoded_bytes;
  }
  if (next_offset != payload_bytes) {
    return DataLossError("KDP manifest: payload bytes unaccounted for");
  }
  result.file_crc = trailer.file_crc;
  return result;
}

std::vector<int64_t> DefaultKdpChunkDims(const Shape& shape) {
  std::vector<int64_t> chunk_dims(static_cast<size_t>(shape.rank()));
  for (int d = 0; d < shape.rank(); ++d) {
    chunk_dims[static_cast<size_t>(d)] = std::max<int64_t>(2, shape.dim(d) / 16);
  }
  return chunk_dims;
}

}  // namespace kondo
