#ifndef KONDO_PACK_PACK_WRITER_H_
#define KONDO_PACK_PACK_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/debloated_array.h"
#include "common/env.h"
#include "common/statusor.h"
#include "exec/thread_pool.h"
#include "pack/kdp_format.h"

namespace kondo {

/// Packing knobs shared by WriteKdpFile and RepackKdpFile.
struct PackOptions {
  /// Pack chunk grid; empty selects DefaultKdpChunkDims(shape) — the same
  /// carve-aligned tiling `kondo make-data --chunked` uses. Repack ignores
  /// this and keeps the existing file's grid (reuse is chunk-for-chunk).
  std::vector<int64_t> chunk_dims;

  /// Chunk codec workers. With a `pool`, codecs fan out over that shared
  /// ThreadPool (never call from inside one of its tasks); otherwise
  /// `jobs > 1` spins up a private pool for the call. Output bytes are
  /// identical at every setting — chunks are encoded into per-chunk slots
  /// and appended in chunk order.
  int jobs = 1;
  ThreadPool* pool = nullptr;

  /// Filesystem access for the commit protocol; nullptr selects
  /// Env::Default(). Tests inject a FaultInjectingEnv: the package commits
  /// through AtomicFile, so a crash at any mutating op leaves either no
  /// `.kdp` or the previous/new complete one.
  Env* env = nullptr;
};

/// Outcome of one pack/repack: chunk classification and size accounting.
struct PackStats {
  int64_t total_chunks = 0;
  int64_t hole_chunks = 0;
  int64_t raw_chunks = 0;
  int64_t coded_chunks = 0;
  int64_t decoded_bytes = 0;  // Sum of non-hole decoded payloads.
  int64_t encoded_bytes = 0;  // Sum of encoded payloads.
  int64_t file_bytes = 0;     // Committed package size, trailer included.
  int64_t chunks_reused = 0;      // Repack: encoded bytes copied verbatim.
  int64_t chunks_reencoded = 0;   // Repack: dirty chunks re-run through
                                  // the codec.
};

/// Packs `array` into a KDP file at `path` (atomic commit). The writer
/// tiles the element space by the chunk grid, classifies each chunk as
/// hole / raw / coded, and records the manifest + CRC trailer. The same
/// array, grid, and codec version always produce byte-identical packages.
StatusOr<PackStats> WriteKdpFile(const std::string& path,
                                 const DebloatedArray& array,
                                 const PackOptions& options = {});

/// Rewrites the package at `in_path` as `out_path` carrying `updated`,
/// re-encoding only the chunks whose decoded bytes changed: clean chunks'
/// encoded payloads are copied verbatim (detected by manifest decoded
/// length + CRC, no decode). `in_path == out_path` repacks in place. The
/// result is byte-identical to a fresh WriteKdpFile of `updated` with the
/// same grid. kFailedPrecondition when `updated` does not match the
/// package's shape or dtype.
StatusOr<PackStats> RepackKdpFile(const std::string& in_path,
                                  const std::string& out_path,
                                  const DebloatedArray& updated,
                                  const PackOptions& options = {});

}  // namespace kondo

#endif  // KONDO_PACK_PACK_WRITER_H_
