#ifndef KONDO_PACK_KDP_FORMAT_H_
#define KONDO_PACK_KDP_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/dtype.h"
#include "array/index.h"
#include "array/shape.h"
#include "common/statusor.h"

namespace kondo {

/// KDP — "Kondo Debloated Package" — stores a debloated array `D_Θ` as
/// independently compressed chunks behind a manifest (docs/FORMATS.md):
///
///   header   magic "KDP1" | u8 version | u8 dtype | u8 rank | u8 reserved
///            | i64 dims[rank] | i64 chunk_dims[rank]
///   payload  encoded chunk payloads, ascending chunk id (holes absent)
///   manifest per chunk: u8 codec | i64 offset | i64 encoded_bytes
///            | i64 decoded_bytes | u32 crc32 (of the DECODED payload)
///   trailer  i64 manifest_offset | i64 num_chunks | u32 file_crc32
///            (header + manifest bytes) | magic "KDPE"
///
/// The chunk grid tiles the element space the same way the carve pipeline's
/// chunk-granular subsets do (src/carve/chunk_subset.h): row-major chunk
/// coordinates, edge chunks clipped to the shape. A chunk's decoded payload
/// is a membership bitmap over its in-bounds elements (chunk-local
/// row-major, LSB-first bits) followed by the retained elements' on-disk
/// bytes (array/kdf_file.h element encoding), so random reads touch only
/// the covering chunk. CRCs are over decoded bytes: corruption is caught
/// after decode, and Repack can detect clean chunks without decoding them.

inline constexpr char kKdpMagic[4] = {'K', 'D', 'P', '1'};
inline constexpr char kKdpTrailerMagic[4] = {'K', 'D', 'P', 'E'};
inline constexpr uint8_t kKdpVersion = 1;
inline constexpr int64_t kKdpTrailerBytes = 8 + 8 + 4 + 4;
inline constexpr int64_t kKdpManifestEntryBytes = 1 + 8 + 8 + 8 + 4;

/// Per-chunk codec ids as stored in the manifest.
enum class KdpCodec : uint8_t {
  kHole = 0,        // Entirely outside I'_Θ: zero payload bytes.
  kRaw = 1,         // Decoded bytes stored verbatim (incompressible).
  kDeltaVarint = 2, // Integer dtypes: delta + zigzag + LEB128 varint.
  kBytePlane = 3,   // Float dtypes: byte-plane transpose + RLE.
};

/// True when `value` is a valid KdpCodec wire value.
bool IsValidKdpCodec(uint8_t value);

/// Stable codec name, e.g. "delta-varint".
const char* KdpCodecName(KdpCodec codec);

/// One manifest entry: where chunk `id`'s encoded bytes live and what they
/// must decode to. `offset` is relative to the payload base (the first byte
/// after the header); hole chunks carry offset/encoded/decoded 0.
struct KdpChunkInfo {
  KdpCodec codec = KdpCodec::kHole;
  int64_t offset = 0;
  int64_t encoded_bytes = 0;
  int64_t decoded_bytes = 0;
  uint32_t crc32 = 0;  // CRC of the decoded payload bytes.
};

/// The chunk grid a KDP file tiles the element space by: row-major chunk
/// coordinates, elements row-major within each chunk, edge chunks clipped
/// to the shape (no padding — a clipped chunk stores only in-bounds
/// elements, unlike the dense KDF chunk model).
class KdpChunkGrid {
 public:
  KdpChunkGrid() = default;

  /// `chunk_dims` must have the shape's rank with positive extents.
  KdpChunkGrid(Shape shape, std::vector<int64_t> chunk_dims);

  const Shape& shape() const { return shape_; }
  const std::vector<int64_t>& chunk_dims() const { return chunk_dims_; }
  int64_t num_chunks() const { return num_chunks_; }

  /// Chunk id (row-major over the chunk grid) covering `index`.
  int64_t ChunkOfIndex(const Index& index) const;

  /// Chunk id covering the row-major linear element id.
  int64_t ChunkOfLinear(int64_t linear) const;

  /// Origin (element coordinates) of chunk `chunk`.
  Index ChunkOrigin(int64_t chunk) const;

  /// In-bounds extents of chunk `chunk` (clipped at the shape boundary).
  std::vector<int64_t> ChunkExtents(int64_t chunk) const;

  /// Number of in-bounds elements of chunk `chunk`.
  int64_t ChunkElements(int64_t chunk) const;

  /// Chunk-local position (row-major over the clipped chunk box) of the
  /// element at `index`. Requires shape().Contains(index).
  int64_t LocalPosition(const Index& index) const;

  /// Invokes `fn(index)` for every in-bounds element of chunk `chunk`, in
  /// chunk-local row-major order.
  template <typename Fn>
  void ForEachChunkElement(int64_t chunk, Fn&& fn) const {
    const Index origin = ChunkOrigin(chunk);
    const std::vector<int64_t> extents = ChunkExtents(chunk);
    const int rank = shape_.rank();
    Index index = origin;
    for (;;) {
      fn(index);
      int d = rank - 1;
      for (; d >= 0; --d) {
        if (++index[d] < origin[d] + extents[static_cast<size_t>(d)]) {
          break;
        }
        index[d] = origin[d];
      }
      if (d < 0) {
        return;
      }
    }
  }

 private:
  Shape shape_;
  std::vector<int64_t> chunk_dims_;
  std::vector<int64_t> grid_dims_;  // Chunks per dimension (ceil division).
  int64_t num_chunks_ = 1;
};

/// Everything the manifest + header describe about one KDP file.
struct KdpManifest {
  DType dtype = DType::kFloat128;
  Shape shape;
  std::vector<int64_t> chunk_dims;
  std::vector<KdpChunkInfo> chunks;

  /// CRC32 over the serialised header + manifest bytes — the package
  /// fingerprint a subset-cache key embeds.
  uint32_t file_crc = 0;

  int64_t HeaderBytes() const {
    return 8 + 16 * shape.rank();
  }
  int64_t ManifestBytes() const {
    return kKdpManifestEntryBytes * static_cast<int64_t>(chunks.size());
  }

  KdpChunkGrid MakeGrid() const { return KdpChunkGrid(shape, chunk_dims); }
};

/// Serialises the fixed header (magic through chunk_dims).
std::string EncodeKdpHeader(const KdpManifest& manifest);

/// Serialises the manifest chunk table (no trailer).
std::string EncodeKdpManifest(const KdpManifest& manifest);

/// Serialises the 24-byte trailer. `file_crc` must cover the header bytes
/// followed by the manifest bytes.
std::string EncodeKdpTrailer(int64_t manifest_offset, int64_t num_chunks,
                             uint32_t file_crc);

/// The fixed-size tail a reader parses first to locate the manifest.
struct KdpTrailer {
  int64_t manifest_offset = 0;
  int64_t num_chunks = 0;
  uint32_t file_crc = 0;
};

/// Parses the trailer from the file's last kKdpTrailerBytes bytes and
/// bounds-checks it against the file size. kDataLoss on bad magic or an
/// inconsistent manifest location.
StatusOr<KdpTrailer> DecodeKdpTrailer(const std::string& tail,
                                      int64_t file_bytes);

/// Parses and validates the header and manifest sections against the
/// trailer: magic, version, dtype, dims, per-chunk table (codec validity,
/// payload bounds, offset monotonicity) and the file CRC. kDataLoss on any
/// structural or checksum mismatch.
StatusOr<KdpManifest> DecodeKdpManifest(const std::string& header,
                                        const std::string& manifest,
                                        const KdpTrailer& trailer);

/// Default pack chunk grid for `shape`: max(2, dim/16) per dimension — the
/// same carve-aligned tiling `kondo make-data --chunked` uses.
std::vector<int64_t> DefaultKdpChunkDims(const Shape& shape);

}  // namespace kondo

#endif  // KONDO_PACK_KDP_FORMAT_H_
