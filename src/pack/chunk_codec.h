#ifndef KONDO_PACK_CHUNK_CODEC_H_
#define KONDO_PACK_CHUNK_CODEC_H_

#include <cstdint>
#include <string>

#include "array/dtype.h"
#include "common/statusor.h"
#include "pack/kdp_format.h"

namespace kondo {

/// Per-chunk codecs for the KDP payload (reusing the KEL2 codec kit:
/// LEB128 varints, zigzag deltas, CRC32 — src/provenance/).
///
/// A chunk's DECODED payload is always `bitmap_bytes` membership bytes
/// (LSB-first bits over the chunk's in-bounds elements) followed by the
/// retained elements' on-disk bytes at DTypeSize(dtype) width, in
/// chunk-local row-major order. The codecs transform those bytes:
///
///  * raw          — stored verbatim.
///  * delta-varint — integer dtypes: the bitmap verbatim, then each value
///                   (read back at its integer width) as a zigzag varint
///                   delta from its predecessor. Smooth integer fields
///                   collapse to ~1 byte/element.
///  * byte-plane   — float dtypes: the bitmap verbatim, then the value
///                   bytes transposed plane-major (all byte 0s, then all
///                   byte 1s, ...) and run-length encoded as varint
///                   control tokens: low bit 1 = repeat run of
///                   (control >> 1) copies of the following byte, low bit
///                   0 = literal run of (control >> 1) verbatim bytes.
///                   Exponent planes and float128's zero pad collapse to a
///                   few bytes while mantissa entropy stays near raw-cost.

/// Number of membership-bitmap bytes for a chunk of `elements` elements.
inline int64_t KdpBitmapBytes(int64_t elements) {
  return (elements + 7) / 8;
}

/// The codec the writer attempts for `dtype` before falling back to raw.
KdpCodec PreferredKdpCodec(DType dtype);

/// Encodes `decoded` (bitmap + packed element bytes for a chunk of
/// `elements` in-bounds elements) with `codec`. Requires a coded codec
/// (not hole/raw) matching the dtype family.
std::string EncodeChunkPayload(KdpCodec codec, DType dtype, int64_t elements,
                               const std::string& decoded);

/// Decodes an encoded chunk payload back to bitmap + packed element bytes.
/// `decoded_bytes` is the manifest's expected output size. kDataLoss on
/// truncated, over-long, or structurally invalid input — corrupt chunks
/// are detected, never silently mis-decoded (the caller additionally
/// checks the manifest CRC over the decoded bytes).
StatusOr<std::string> DecodeChunkPayload(KdpCodec codec, DType dtype,
                                         int64_t elements,
                                         int64_t decoded_bytes,
                                         const std::string& encoded);

}  // namespace kondo

#endif  // KONDO_PACK_CHUNK_CODEC_H_
