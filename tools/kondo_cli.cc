// kondo — command-line front end for the Kondo data-debloating library.
//
//   kondo programs
//   kondo spec <Kondofile>
//   kondo make-data <program> <out.kdf> [--chunked] [--seed N]
//   kondo inspect <file.kdf|file.kdd>
//   kondo debloat <program> --data <in.kdf> --out <out.kdd>
//                 [--seed N] [--audited] [--max-iter N] [--max-evals N]
//                 [--jobs N] [--shards N] [--shard-dir DIR]
//                 [--workers N | --connect ADDR ...] [--plan-weights KEL2]
//   kondo debloat <multi-file-program> --out <dir>
//                 [--seed N] [--max-iter N] [--max-evals N]
//                 [--jobs N] [--shards N] [--shard-dir DIR]
//                 [--workers N | --connect ADDR ...] [--plan-weights KEL2]
//   kondo replay <program> <in.kdd> <param>... [--remote <orig.kdf>]
//       [--fetch-retries <n>] [--fetch-backoff-ms <ms>]
//   kondo evaluate <program> [--seed N] [--map] [--jobs N] [--shards N]
//                 [--max-evals N]
//   kondo fuzz <program> --out <state.kcs> [--seed N] [--max-iter N]
//               [--max-evals N] [--resume <state.kcs>] [--jobs N]
//               [--shards N]
//   kondo carve <program> --state <state.kcs> [--center X] [--boundary X]
//   kondo pack <in.kdd> <out.kdp> [--chunk N] [--jobs N]
//   kondo unpack <in.kdp> <out.kdd> [--jobs N]
//   kondo repack <pkg.kdp> --data <updated.kdd> [--out <out.kdp>] [--jobs N]
//   kondo pack-stats <pkg.kdp>
//   kondo provenance compact <in.kel> <out.kel2> [--block N]
//   kondo provenance query <store> --range A:B [--file F] [--runs]
//   kondo provenance stats <store>
//   kondo serve (--socket PATH | --port N) [--pool DIR] [--jobs N]
//               [--cache-mb N] [--max-inflight N] [--queue N]
//   kondo worker (--socket PATH | --port N) [--scratch DIR] [--jobs N]
//   kondo client fetch|query|submit|stats ... (--socket PATH | --port N)
//   kondo blast --artifact A (--socket PATH | --port N) [--clients N]
//               [--requests N] [--range A:B]

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "array/data_array.h"
#include "array/debloated_array.h"
#include "array/kdf_file.h"
#include "core/container_spec.h"
#include "core/debloat_test.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "core/multi_kondo.h"
#include "core/remote_fetch.h"
#include "core/report.h"
#include "core/runtime.h"
#include "common/flag_parse.h"
#include "common/strings.h"
#include "exec/campaign_executor.h"
#include "exec/thread_pool.h"
#include "fleet/fleet_scheduler.h"
#include "fleet/fleet_worker.h"
#include "fuzz/campaign_state.h"
#include "pack/kdp_format.h"
#include "pack/pack_reader.h"
#include "pack/pack_writer.h"
#include "provenance/kel2_reader.h"
#include "provenance/kel2_writer.h"
#include "provenance/persist.h"
#include "provenance/provenance_query.h"
#include "serve/blast.h"
#include "serve/client.h"
#include "serve/server.h"
#include "shard/plan_weights.h"
#include "shard/shard_scheduler.h"
#include "workloads/registry.h"

namespace kondo::cli {
namespace {

/// Per-command usage lines. Argument errors print only the offending
/// command's synopsis; the bare `kondo` invocation prints them all.
struct CommandHelp {
  const char* name;
  const char* usage;
};

constexpr CommandHelp kCommandHelp[] = {
    {"programs", "  kondo programs\n"},
    {"spec", "  kondo spec <Kondofile>\n"},
    {"make-data",
     "  kondo make-data <program> <out.kdf> [--chunked] [--seed N]\n"},
    {"inspect", "  kondo inspect <file.kdf|file.kdd>\n"},
    {"debloat",
     "  kondo debloat <program> --data <in.kdf> --out <out.kdd>\n"
     "                [--seed N] [--audited] [--max-iter N] [--max-evals N]\n"
     "                [--jobs N] [--shards N] [--shard-dir DIR]\n"
     "                [--workers N | --connect ADDR ...]\n"
     "                [--plan-weights KEL2]\n"
     "  kondo debloat <multi-file-program> --out <dir>\n"
     "                [--seed N] [--max-iter N] [--max-evals N] [--jobs N]\n"
     "                [--shards N] [--shard-dir DIR]\n"
     "                [--workers N | --connect ADDR ...]\n"
     "                [--plan-weights KEL2]\n"},
    {"replay",
     "  kondo replay <program> <in.kdd> <param>... [--remote <orig.kdf>]\n"
     "      [--fetch-retries <n>] [--fetch-backoff-ms <ms>]\n"},
    {"evaluate",
     "  kondo evaluate <program> [--seed N] [--map] [--jobs N]\n"
     "                 [--shards N] [--max-evals N]\n"},
    {"fuzz",
     "  kondo fuzz <program> --out <state.kcs> [--seed N]\n"
     "              [--max-iter N] [--max-evals N] [--resume <state.kcs>]\n"
     "              [--jobs N] [--shards N]\n"},
    {"carve",
     "  kondo carve <program> --state <state.kcs> [--center X]\n"
     "              [--boundary X]\n"},
    {"pack",
     "  kondo pack <in.kdd> <out.kdp> [--chunk N] [--jobs N]\n"},
    {"unpack", "  kondo unpack <in.kdp> <out.kdd> [--jobs N]\n"},
    {"repack",
     "  kondo repack <pkg.kdp> --data <updated.kdd> [--out <out.kdp>]\n"
     "               [--jobs N]\n"},
    {"pack-stats", "  kondo pack-stats <pkg.kdp>\n"},
    {"provenance",
     "  kondo provenance compact <in.kel> <out.kel2> [--block N]\n"
     "  kondo provenance query <store> --range A:B [--file F] [--runs]\n"
     "  kondo provenance stats <store>\n"},
    {"serve",
     "  kondo serve (--socket PATH | --port N) [--pool DIR] [--jobs N]\n"
     "              [--cache-mb N] [--max-inflight N] [--queue N]\n"},
    {"client",
     "  kondo client fetch <artifact> --range A:B (--socket P | --port N)\n"
     "  kondo client query <store> --range A:B [--file F] [--runs]\n"
     "               (--socket PATH | --port N)\n"
     "  kondo client submit <program> [--seed N] [--max-evals N]\n"
     "               [--max-iter N] (--socket PATH | --port N)\n"
     "  kondo client stats (--socket PATH | --port N)\n"},
    {"blast",
     "  kondo blast --artifact A (--socket PATH | --port N) [--clients N]\n"
     "              [--requests N] [--range A:B]\n"},
    {"worker",
     "  kondo worker (--socket PATH | --port N) [--scratch DIR] [--jobs N]\n"},
};

int Usage() {
  std::fprintf(stderr, "usage:\n");
  for (const CommandHelp& help : kCommandHelp) {
    std::fprintf(stderr, "%s", help.usage);
  }
  return 2;
}

/// Argument error for a recognised command: print just that command's
/// synopsis.
int UsageFor(const char* name) {
  for (const CommandHelp& help : kCommandHelp) {
    if (std::strcmp(help.name, name) == 0) {
      std::fprintf(stderr, "usage:\n%s", help.usage);
      return 2;
    }
  }
  return Usage();
}

/// `--jobs N` (campaign worker threads). Defaults to the hardware
/// concurrency; explicit values must be positive integers (then clamped to
/// a sane range). Results are bit-identical across settings — only
/// wall-clock time changes. Returns false on a malformed value.
bool JobsFrom(std::vector<std::string>* args, int* jobs) {
  int64_t value = 0;
  switch (TakePositiveInt(args, "--jobs", &value)) {
    case FlagParse::kAbsent:
      *jobs = ClampJobs(HardwareThreads());
      return true;
    case FlagParse::kOk:
      *jobs = ClampJobs(static_cast<int>(std::min<int64_t>(value, 1 << 20)));
      return true;
    case FlagParse::kBad:
      return false;
  }
  return false;
}

/// `--shards N` (campaign shards; default 1 = unsharded). The merged
/// result is bit-identical at every setting.
bool ShardsFrom(std::vector<std::string>* args, int* shards) {
  int64_t value = 1;
  if (TakePositiveInt(args, "--shards", &value) == FlagParse::kBad) {
    return false;
  }
  *shards = static_cast<int>(std::min<int64_t>(value, 1 << 20));
  return true;
}

/// `--max-evals N` (deterministic evaluation budget; 0 = unlimited).
bool MaxEvalsFrom(std::vector<std::string>* args, int64_t* max_evals) {
  *max_evals = 0;
  return TakePositiveInt(args, "--max-evals", max_evals) != FlagParse::kBad;
}

/// `--max-iter N` (schedule iteration cap; 0 = keep the config default).
bool MaxIterFrom(std::vector<std::string>* args, int64_t* max_iter) {
  *max_iter = 0;
  return TakePositiveInt(args, "--max-iter", max_iter) != FlagParse::kBad;
}

/// Which stopping criterion ended a campaign, for run reports.
const char* StopReason(const FuzzStats& stats) {
  if (stats.stopped_by_eval_budget) {
    return "eval budget";
  }
  if (stats.stopped_by_budget) {
    return "time budget";
  }
  if (stats.stopped_by_stagnation) {
    return "stagnation";
  }
  return "max iterations";
}

/// Derives the `.kdp` package path companion to a `.kdd` container path.
std::string KdpPathFor(const std::string& kdd_path) {
  const std::string suffix = ".kdd";
  if (kdd_path.size() > suffix.size() &&
      kdd_path.compare(kdd_path.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
    return kdd_path.substr(0, kdd_path.size() - suffix.size()) + ".kdp";
  }
  return kdd_path + ".kdp";
}

/// Packs `array` to `path` and prints the one-line summary the pack
/// commands and the debloat pipeline share.
int WritePackage(const std::string& path, const DebloatedArray& array,
                 const PackOptions& options) {
  StatusOr<PackStats> stats = WriteKdpFile(path, array, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("packed %s: %lld chunks (%lld holes, %lld coded, %lld raw), "
              "%lld -> %lld payload bytes, %lld on disk\n",
              path.c_str(), static_cast<long long>(stats->total_chunks),
              static_cast<long long>(stats->hole_chunks),
              static_cast<long long>(stats->coded_chunks),
              static_cast<long long>(stats->raw_chunks),
              static_cast<long long>(stats->decoded_bytes),
              static_cast<long long>(stats->encoded_bytes),
              static_cast<long long>(stats->file_bytes));
  return 0;
}

int CmdPrograms() {
  std::printf("%-7s %-8s %-12s %s\n", "name", "params", "data", "description");
  for (const std::string& name : AllProgramNames()) {
    const std::unique_ptr<Program> program = CreateProgram(name);
    std::printf("%-7s %-8d %-12s %s\n", name.c_str(),
                program->param_space().num_params(),
                program->data_shape().ToString().c_str(),
                std::string(program->description()).c_str());
  }
  std::printf("\nmulti-file programs (debloat/evaluate with --shards):\n");
  std::printf("%-8s %-8s %-6s %s\n", "name", "params", "files", "shapes");
  for (const std::string& name : AllMultiFileProgramNames()) {
    const std::unique_ptr<MultiFileProgram> program =
        CreateMultiFileProgram(name);
    std::string shapes;
    for (int f = 0; f < program->num_files(); ++f) {
      if (f > 0) {
        shapes += "  ";
      }
      shapes += std::string(program->file_name(f)) + ":" +
                program->file_shape(f).ToString();
    }
    std::printf("%-8s %-8d %-6d %s\n", name.c_str(),
                program->param_space().num_params(), program->num_files(),
                shapes.c_str());
  }
  return 0;
}

int CmdSpec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  StatusOr<ContainerSpec> spec = ParseContainerSpec(buffer.str());
  if (!spec.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  std::printf("base image: %s\n", spec->base_image.c_str());
  std::printf("run steps:  %zu\n", spec->run_steps.size());
  for (const AddInstruction& add : spec->adds) {
    std::printf("add:        %s -> %s\n", add.source.c_str(),
                add.destination.c_str());
  }
  std::printf("theta:      %s\n", spec->params.ToString().c_str());
  std::printf("entrypoint: %s\n", spec->entrypoint.c_str());
  return 0;
}

int CmdMakeData(std::vector<std::string> args) {
  const bool chunked = TakeFlag(&args, "--chunked");
  const uint64_t seed = SeedFrom(&args);
  if (args.size() != 2) {
    return UsageFor("make-data");
  }
  const std::unique_ptr<Program> program = CreateProgram(args[0]);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program: %s\n", args[0].c_str());
    return 1;
  }
  DataArray array(program->data_shape(), DType::kFloat128);
  array.FillPattern(seed);
  std::vector<int64_t> chunk_dims(
      static_cast<size_t>(program->rank()),
      std::max<int64_t>(2, program->data_shape().dim(0) / 16));
  const Status status = WriteKdfFile(
      args[1], array, chunked ? LayoutKind::kChunked : LayoutKind::kRowMajor,
      chunk_dims);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: shape %s, %s layout\n", args[1].c_str(),
              program->data_shape().ToString().c_str(),
              chunked ? "chunked" : "row-major");
  return 0;
}

int CmdInspect(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".kdd") {
    StatusOr<DebloatedArray> array = DebloatedArray::ReadFile(path);
    if (!array.ok()) {
      std::fprintf(stderr, "%s\n", array.status().ToString().c_str());
      return 1;
    }
    std::printf("debloated array (KDD)\n");
    std::printf("shape:     %s\n", array->shape().ToString().c_str());
    std::printf("dtype:     %s\n",
                std::string(DTypeName(array->dtype())).c_str());
    std::printf("retained:  %lld of %lld elements (%.1f%%)\n",
                static_cast<long long>(array->retained_count()),
                static_cast<long long>(array->shape().NumElements()),
                100.0 * static_cast<double>(array->retained_count()) /
                    static_cast<double>(array->shape().NumElements()));
    std::printf("payload:   %lld bytes (original %lld, %.1f%% smaller)\n",
                static_cast<long long>(array->DebloatedPayloadBytes()),
                static_cast<long long>(array->OriginalPayloadBytes()),
                100.0 * array->SizeReductionFraction());
    return 0;
  }
  StatusOr<KdfReader> reader = KdfReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  std::printf("data array (KDF)\n");
  std::printf("shape:   %s\n", reader->shape().ToString().c_str());
  std::printf("dtype:   %s\n",
              std::string(DTypeName(reader->header().dtype)).c_str());
  std::printf("layout:  %s\n",
              reader->header().layout_kind == LayoutKind::kChunked
                  ? "chunked"
                  : "row-major");
  std::printf("bytes:   %lld (header %lld + payload)\n",
              static_cast<long long>(reader->FileBytes()),
              static_cast<long long>(reader->payload_offset()));
  return 0;
}

/// Fleet flags pulled off `kondo debloat`: either spawn `--workers N`
/// local worker processes under the campaign directory, or attach to
/// externally started workers via repeatable `--connect ADDR` (all-digit
/// ADDR = loopback TCP port, anything else = unix-domain socket path).
/// `--plan-weights KEL2` steers the planner from a prior campaign's
/// lineage store and also applies to purely local sharded runs.
struct FleetCliOptions {
  int spawn_workers = 0;
  std::vector<SocketAddress> connect;
  std::string plan_weights_path;

  bool active() const { return spawn_workers > 0 || !connect.empty(); }
};

bool FleetFrom(std::vector<std::string>* args, FleetCliOptions* fleet) {
  int64_t workers = 0;
  if (TakePositiveInt(args, "--workers", &workers) == FlagParse::kBad) {
    return false;
  }
  fleet->spawn_workers = static_cast<int>(std::min<int64_t>(workers, 256));
  for (std::string addr = TakeFlagValue(args, "--connect"); !addr.empty();
       addr = TakeFlagValue(args, "--connect")) {
    SocketAddress endpoint;
    if (addr.find_first_not_of("0123456789") == std::string::npos) {
      const long long port = std::atoll(addr.c_str());
      if (port < 1 || port > 65535) {
        std::fprintf(stderr, "invalid --connect port (want 1..65535): %s\n",
                     addr.c_str());
        return false;
      }
      endpoint.port = static_cast<int>(port);
    } else {
      endpoint.unix_path = addr;
    }
    fleet->connect.push_back(endpoint);
  }
  fleet->plan_weights_path = TakeFlagValue(args, "--plan-weights");
  if (fleet->spawn_workers > 0 && !fleet->connect.empty()) {
    std::fprintf(stderr, "--workers and --connect are exclusive\n");
    return false;
  }
  return true;
}

/// Resolves `--plan-weights KEL2` into planner weights over `program`'s
/// file geometry (empty path = empty weights = element-count balancing).
StatusOr<PlanWeights> PlanWeightsFromCli(const std::string& path,
                                         const MultiFileProgram& program) {
  PlanWeights weights;
  if (path.empty()) {
    return weights;
  }
  std::vector<Shape> shapes;
  shapes.reserve(static_cast<size_t>(program.num_files()));
  for (int f = 0; f < program.num_files(); ++f) {
    shapes.push_back(program.file_shape(f));
  }
  return WeightsFromLineageStore(path, shapes);
}

/// A `kondo worker` child process this coordinator forked for
/// `debloat --workers N`.
struct SpawnedWorker {
  pid_t pid = -1;
  std::string socket_path;
};

/// Forks `count` local `kondo worker` processes (re-execing this binary),
/// one unix socket and one scratch subdirectory each under `dir`, and
/// waits until every socket file exists — the worker binds before
/// accepting, so the file's presence means the endpoint is connectable.
Status SpawnLocalWorkers(int count, int total_jobs, const std::string& dir,
                         std::vector<SpawnedWorker>* spawned,
                         std::vector<SocketAddress>* endpoints) {
  const int jobs_each = std::max(1, total_jobs / std::max(1, count));
  const std::string jobs_text = std::to_string(jobs_each);
  for (int i = 0; i < count; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "worker-%03d", i);
    const std::string socket_path = dir + "/" + name + ".sock";
    const std::string scratch = dir + "/" + name;
    std::remove(socket_path.c_str());
    const pid_t pid = ::fork();
    if (pid < 0) {
      return InternalError("fork failed spawning fleet workers");
    }
    if (pid == 0) {
      const char* child_args[] = {
          "kondo",     "worker", "--socket", socket_path.c_str(),
          "--scratch", scratch.c_str(),      "--jobs",   jobs_text.c_str(),
          nullptr};
      ::execv("/proc/self/exe", const_cast<char* const*>(child_args));
      std::_Exit(127);  // exec failed; the bind-wait below reports it.
    }
    SpawnedWorker worker;
    worker.pid = pid;
    worker.socket_path = socket_path;
    spawned->push_back(worker);
    SocketAddress address;
    address.unix_path = socket_path;
    endpoints->push_back(address);
  }
  for (const SpawnedWorker& worker : *spawned) {
    for (int tries = 0;; ++tries) {
      struct stat st;
      if (::stat(worker.socket_path.c_str(), &st) == 0) {
        break;
      }
      if (tries >= 1000) {
        return InternalError(StrCat("spawned fleet worker never bound ",
                                    worker.socket_path));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return OkStatus();
}

/// Terminates and reaps every spawned worker; leftover socket files are
/// removed so a rerun starts clean.
void StopLocalWorkers(const std::vector<SpawnedWorker>& spawned) {
  for (const SpawnedWorker& worker : spawned) {
    if (worker.pid > 0) {
      ::kill(worker.pid, SIGTERM);
    }
  }
  for (const SpawnedWorker& worker : spawned) {
    if (worker.pid > 0) {
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
    }
    std::remove(worker.socket_path.c_str());
  }
}

/// Runs the sharded campaign for `kondo debloat`: locally when no fleet
/// flags are present, otherwise over spawned or attached workers. Weights
/// from `--plan-weights` steer the planner on both paths.
StatusOr<ShardedRunResult> RunShardedFromCli(const MultiFileProgram& program,
                                             const KondoConfig& config,
                                             const std::string& shard_dir,
                                             int shards,
                                             const FleetCliOptions& fleet) {
  KONDO_ASSIGN_OR_RETURN(
      PlanWeights weights,
      PlanWeightsFromCli(fleet.plan_weights_path, program));
  if (!fleet.active()) {
    ShardOptions options;
    options.shards = shards;
    options.output_dir = shard_dir;
    options.plan_weights = std::move(weights);
    return RunShardedCampaign(program, config, options);
  }
  FleetOptions options;
  options.shards = shards;
  options.output_dir = shard_dir;
  options.plan_weights = std::move(weights);
  std::vector<SpawnedWorker> spawned;
  if (fleet.spawn_workers > 0) {
    KONDO_RETURN_IF_ERROR(EnsureCampaignDirectory(shard_dir));
    const Status up = SpawnLocalWorkers(fleet.spawn_workers, config.jobs,
                                        shard_dir, &spawned, &options.workers);
    if (!up.ok()) {
      StopLocalWorkers(spawned);
      return up;
    }
  } else {
    options.workers = fleet.connect;
  }
  StatusOr<ShardedRunResult> result =
      RunFleetCampaign(program, config, options);
  StopLocalWorkers(spawned);
  return result;
}

/// Multi-file debloat: one campaign over Θ (optionally sharded), one
/// synthesised source array + packaged .kdd per data file under `out_dir`.
int CmdDebloatMultiFile(std::unique_ptr<MultiFileProgram> program,
                        const std::string& out_dir,
                        const std::string& shard_dir, uint64_t seed, int jobs,
                        int shards, int64_t max_evals, int64_t max_iter,
                        const FleetCliOptions& fleet) {
  KondoConfig config;
  config.rng_seed = seed;
  config.jobs = jobs;
  config.shards = shards;
  config.fuzz.max_evals = max_evals;
  if (max_iter > 0) {
    config.fuzz.max_iter = static_cast<int>(max_iter);
  }

  MultiKondoResult result;
  if (!shard_dir.empty()) {
    StatusOr<ShardedRunResult> sharded =
        RunShardedFromCli(*program, config, shard_dir, shards, fleet);
    if (!sharded.ok()) {
      std::fprintf(stderr, "%s\n", sharded.status().ToString().c_str());
      return 1;
    }
    if (!sharded->complete) {
      std::printf("campaign paused: %d of %d shards fuzzed; rerun to "
                  "continue\n",
                  sharded->shards_fuzzed_now, sharded->shards_total);
      return 0;
    }
    result.fuzz_stats = sharded->merged.fuzz_stats;
    result.per_file_discovered = std::move(sharded->merged.per_file_discovered);
    result.per_file_approx = std::move(sharded->merged.per_file_approx);
    result.per_file_carve_stats =
        std::move(sharded->merged.per_file_carve_stats);
    std::printf("lineage: %s\n", sharded->merged_lineage_path.c_str());
  } else {
    result = RunMultiFileKondo(*program, config);
  }
  std::printf("fuzz:  %d evaluations (%d useful), stopped by %s\n",
              result.fuzz_stats.evaluations,
              result.fuzz_stats.useful_evaluations,
              StopReason(result.fuzz_stats));

  if (Status status = EnsureCampaignDirectory(out_dir); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  for (int f = 0; f < program->num_files(); ++f) {
    DataArray array(program->file_shape(f), DType::kFloat128);
    array.FillPattern(seed + static_cast<uint64_t>(f));
    DebloatedArray debloated =
        PackageDebloated(array, result.per_file_approx[static_cast<size_t>(f)]);
    const std::string path =
        out_dir + "/" + std::string(program->file_name(f)) + ".kdd";
    if (Status status = debloated.WriteFile(path); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: %lld -> %lld bytes (%.1f%% smaller, %d hulls)\n",
                path.c_str(),
                static_cast<long long>(debloated.OriginalPayloadBytes()),
                static_cast<long long>(debloated.DebloatedPayloadBytes()),
                100.0 * debloated.SizeReductionFraction(),
                result.per_file_carve_stats[static_cast<size_t>(f)]
                    .final_hulls);
    PackOptions pack_options;
    pack_options.jobs = jobs;
    if (int rc = WritePackage(KdpPathFor(path), debloated, pack_options);
        rc != 0) {
      return rc;
    }
  }
  return 0;
}

int CmdDebloat(std::vector<std::string> args) {
  const std::string data_path = TakeFlagValue(&args, "--data");
  const std::string out_path = TakeFlagValue(&args, "--out");
  const std::string shard_dir = TakeFlagValue(&args, "--shard-dir");
  const bool audited = TakeFlag(&args, "--audited");
  const uint64_t seed = SeedFrom(&args);
  int jobs = 0;
  int shards = 1;
  int64_t max_evals = 0;
  int64_t max_iter = 0;
  FleetCliOptions fleet;
  if (!JobsFrom(&args, &jobs) || !ShardsFrom(&args, &shards) ||
      !MaxEvalsFrom(&args, &max_evals) || !MaxIterFrom(&args, &max_iter) ||
      !FleetFrom(&args, &fleet) || args.size() != 1 || out_path.empty()) {
    return UsageFor("debloat");
  }
  if (fleet.active() && shard_dir.empty()) {
    std::fprintf(stderr,
                 "--workers/--connect need --shard-dir (the campaign "
                 "directory is the fleet's source of truth)\n");
    return UsageFor("debloat");
  }

  if (std::unique_ptr<MultiFileProgram> multi =
          CreateMultiFileProgram(args[0]);
      multi != nullptr) {
    if (!data_path.empty() || audited) {
      return UsageFor("debloat");
    }
    return CmdDebloatMultiFile(std::move(multi), out_path, shard_dir, seed,
                               jobs, shards, max_evals, max_iter, fleet);
  }

  std::unique_ptr<Program> program = CreateProgram(args[0]);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program: %s\n", args[0].c_str());
    return 1;
  }
  if (data_path.empty()) {
    return UsageFor("debloat");
  }

  KondoConfig config = ScaledKondoConfig(program->data_shape());
  config.rng_seed = seed;
  config.jobs = jobs;
  config.shards = shards;
  config.fuzz.max_evals = max_evals;
  if (max_iter > 0) {
    config.fuzz.max_iter = static_cast<int>(max_iter);
  }

  IndexSet approx(program->data_shape());
  if (shards > 1 || !shard_dir.empty()) {
    // The chunk-range splitter partitions the single file; the merged
    // result is bit-identical to the unsharded pipeline.
    if (audited) {
      std::fprintf(stderr,
                   "--audited and --shards/--shard-dir are exclusive\n");
      return UsageFor("debloat");
    }
    const SingleFileProgramAdapter adapter(std::move(program));
    StatusOr<ShardedRunResult> sharded =
        RunShardedFromCli(adapter, config, shard_dir, shards, fleet);
    if (!sharded.ok()) {
      std::fprintf(stderr, "%s\n", sharded.status().ToString().c_str());
      return 1;
    }
    if (!sharded->complete) {
      std::printf("campaign paused: %d of %d shards fuzzed; rerun to "
                  "continue\n",
                  sharded->shards_fuzzed_now, sharded->shards_total);
      return 0;
    }
    approx = std::move(sharded->merged.per_file_approx[0]);
    std::printf("fuzz:  %d evaluations (%d useful), %d hulls carved, "
                "stopped by %s\n",
                sharded->merged.fuzz_stats.evaluations,
                sharded->merged.fuzz_stats.useful_evaluations,
                sharded->merged.per_file_carve_stats[0].final_hulls,
                StopReason(sharded->merged.fuzz_stats));
  } else {
    KondoPipeline pipeline(config);
    const KondoResult result =
        audited ? pipeline.RunWithCandidateTest(
                      MakeAuditedCandidateTest(*program, data_path),
                      program->param_space(), program->data_shape())
                : pipeline.Run(*program);
    approx = result.approx;
    std::printf("fuzz:  %d evaluations (%d useful), %d hulls carved, "
                "stopped by %s\n",
                result.fuzz.stats.evaluations,
                result.fuzz.stats.useful_evaluations,
                result.carve_stats.final_hulls, StopReason(result.fuzz.stats));
  }

  StatusOr<KdfReader> reader = KdfReader::Open(data_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  StatusOr<DataArray> array = reader->ReadAll();
  if (!array.ok()) {
    std::fprintf(stderr, "%s\n", array.status().ToString().c_str());
    return 1;
  }
  DebloatedArray debloated = PackageDebloated(*array, approx);
  if (Status status = debloated.WriteFile(out_path); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld -> %lld bytes (%.1f%% smaller)\n",
              out_path.c_str(),
              static_cast<long long>(debloated.OriginalPayloadBytes()),
              static_cast<long long>(debloated.DebloatedPayloadBytes()),
              100.0 * debloated.SizeReductionFraction());
  PackOptions pack_options;
  pack_options.jobs = jobs;
  return WritePackage(KdpPathFor(out_path), debloated, pack_options);
}

int CmdPack(std::vector<std::string> args) {
  int jobs = 0;
  int64_t chunk = 0;
  if (!JobsFrom(&args, &jobs) ||
      TakePositiveInt(&args, "--chunk", &chunk) == FlagParse::kBad ||
      args.size() != 2) {
    return UsageFor("pack");
  }
  StatusOr<DebloatedArray> array = DebloatedArray::ReadFile(args[0]);
  if (!array.ok()) {
    std::fprintf(stderr, "%s\n", array.status().ToString().c_str());
    return 1;
  }
  PackOptions options;
  options.jobs = jobs;
  if (chunk > 0) {
    options.chunk_dims.assign(
        static_cast<size_t>(array->shape().rank()), chunk);
  }
  return WritePackage(args[1], *array, options);
}

int CmdUnpack(std::vector<std::string> args) {
  int jobs = 0;
  if (!JobsFrom(&args, &jobs) || args.size() != 2) {
    return UsageFor("unpack");
  }
  StatusOr<std::unique_ptr<PackReader>> reader = PackReader::Open(args[0]);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  StatusOr<DebloatedArray> array = (*reader)->Unpack(nullptr, jobs);
  if (!array.ok()) {
    std::fprintf(stderr, "%s\n", array.status().ToString().c_str());
    return 1;
  }
  if (Status status = array->WriteFile(args[1]); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("unpacked %s -> %s: shape %s, %lld retained elements\n",
              args[0].c_str(), args[1].c_str(),
              array->shape().ToString().c_str(),
              static_cast<long long>(array->retained_count()));
  return 0;
}

int CmdRepack(std::vector<std::string> args) {
  const std::string data_path = TakeFlagValue(&args, "--data");
  std::string out_path = TakeFlagValue(&args, "--out");
  int jobs = 0;
  if (!JobsFrom(&args, &jobs) || args.size() != 1 || data_path.empty()) {
    return UsageFor("repack");
  }
  if (out_path.empty()) {
    out_path = args[0];  // In-place repack (atomic tmp+rename commit).
  }
  StatusOr<DebloatedArray> updated = DebloatedArray::ReadFile(data_path);
  if (!updated.ok()) {
    std::fprintf(stderr, "%s\n", updated.status().ToString().c_str());
    return 1;
  }
  PackOptions options;
  options.jobs = jobs;
  StatusOr<PackStats> stats =
      RepackKdpFile(args[0], out_path, *updated, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("repacked %s -> %s: %lld of %lld chunks reused, %lld "
              "re-encoded, %lld bytes on disk\n",
              args[0].c_str(), out_path.c_str(),
              static_cast<long long>(stats->chunks_reused),
              static_cast<long long>(stats->total_chunks),
              static_cast<long long>(stats->chunks_reencoded),
              static_cast<long long>(stats->file_bytes));
  return 0;
}

int CmdPackStats(std::vector<std::string> args) {
  if (args.size() != 1) {
    return UsageFor("pack-stats");
  }
  StatusOr<std::unique_ptr<PackReader>> reader = PackReader::Open(args[0]);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  const KdpManifest& manifest = (*reader)->manifest();
  int64_t holes = 0, raw = 0, coded = 0;
  int64_t encoded = 0, decoded = 0;
  for (const KdpChunkInfo& info : manifest.chunks) {
    switch (info.codec) {
      case KdpCodec::kHole:
        ++holes;
        break;
      case KdpCodec::kRaw:
        ++raw;
        break;
      default:
        ++coded;
        break;
    }
    encoded += info.encoded_bytes;
    decoded += info.decoded_bytes;
  }
  std::string chunk_dims;
  for (size_t d = 0; d < manifest.chunk_dims.size(); ++d) {
    if (d > 0) {
      chunk_dims += "x";
    }
    chunk_dims += std::to_string(manifest.chunk_dims[d]);
  }
  std::printf("%s: KDP v%d, dtype %s, shape %s, chunk grid %s\n",
              args[0].c_str(), kKdpVersion,
              std::string(DTypeName(manifest.dtype)).c_str(),
              manifest.shape.ToString().c_str(), chunk_dims.c_str());
  std::printf("chunks: %lld total, %lld holes, %lld coded, %lld raw\n",
              static_cast<long long>(manifest.chunks.size()),
              static_cast<long long>(holes), static_cast<long long>(coded),
              static_cast<long long>(raw));
  std::printf("bytes:  %lld decoded -> %lld encoded, %lld on disk\n",
              static_cast<long long>(decoded),
              static_cast<long long>(encoded),
              static_cast<long long>((*reader)->FileBytes()));
  std::printf("retained: %lld elements; fingerprint %08x\n",
              static_cast<long long>((*reader)->retained_count()),
              (*reader)->pack_fingerprint());
  return 0;
}

int CmdReplay(std::vector<std::string> args) {
  const std::string remote_path = TakeFlagValue(&args, "--remote");
  int64_t fetch_retries = 0;
  int64_t fetch_backoff_ms = 0;
  if (TakePositiveInt(&args, "--fetch-retries", &fetch_retries) ==
          FlagParse::kBad ||
      TakePositiveInt(&args, "--fetch-backoff-ms", &fetch_backoff_ms) ==
          FlagParse::kBad) {
    return UsageFor("replay");
  }
  if (args.size() < 3) {
    return UsageFor("replay");
  }
  const std::unique_ptr<Program> program = CreateProgram(args[0]);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program: %s\n", args[0].c_str());
    return 1;
  }
  StatusOr<DebloatedArray> array = DebloatedArray::ReadFile(args[1]);
  if (!array.ok()) {
    std::fprintf(stderr, "%s\n", array.status().ToString().c_str());
    return 1;
  }
  ParamValue v;
  for (size_t i = 2; i < args.size(); ++i) {
    v.push_back(std::atof(args[i].c_str()));
  }
  if (static_cast<int>(v.size()) != program->param_space().num_params()) {
    std::fprintf(stderr, "expected %d parameters\n",
                 program->param_space().num_params());
    return 1;
  }

  if (!remote_path.empty()) {
    StatusOr<std::unique_ptr<KdfRemoteSource>> remote =
        KdfRemoteSource::Open(remote_path);
    if (!remote.ok()) {
      std::fprintf(stderr, "%s\n", remote.status().ToString().c_str());
      return 1;
    }
    FetchPolicy policy;
    policy.max_attempts = 1 + static_cast<int>(fetch_retries);
    policy.backoff_micros = fetch_backoff_ms * 1000;
    FetchingRuntime runtime(*std::move(array), *std::move(remote), policy);
    const Status status = runtime.ReplayRun(*program, v);
    std::printf("replay: %s (%lld local hits, %lld remote fetches, %lld "
                "bytes pulled, %lld retries, %lld fetch failures)\n",
                status.ToString().c_str(),
                static_cast<long long>(runtime.stats().local_hits),
                static_cast<long long>(runtime.stats().remote_fetches),
                static_cast<long long>(runtime.stats().bytes_fetched),
                static_cast<long long>(runtime.stats().fetch_retries),
                static_cast<long long>(runtime.stats().fetch_failures));
    return status.ok() ? 0 : 1;
  }

  DebloatRuntime runtime(*std::move(array));
  const Status status = runtime.ReplayRun(*program, v);
  std::printf("replay: %s (%lld reads, %lld misses)\n",
              status.ToString().c_str(),
              static_cast<long long>(runtime.stats().reads),
              static_cast<long long>(runtime.stats().misses));
  return status.ok() ? 0 : 1;
}

/// Multi-file evaluate: runs the (optionally sharded) multi-file pipeline
/// and scores each file's approximation against its enumerated ground
/// truth.
int CmdEvaluateMultiFile(std::unique_ptr<MultiFileProgram> program,
                         uint64_t seed, int jobs, int shards,
                         int64_t max_evals) {
  KondoConfig config;
  config.rng_seed = seed;
  config.jobs = jobs;
  config.shards = shards;
  config.fuzz.max_evals = max_evals;
  const MultiKondoResult result = RunMultiFileKondo(*program, config);
  std::printf("fuzz:  %d evaluations (%d useful) in %d iterations, "
              "stopped by %s\n",
              result.fuzz_stats.evaluations,
              result.fuzz_stats.useful_evaluations, result.fuzz_stats.iterations,
              StopReason(result.fuzz_stats));
  const MultiIndexSets truths = program->GroundTruths();
  for (int f = 0; f < program->num_files(); ++f) {
    const IndexSet& approx = result.per_file_approx[static_cast<size_t>(f)];
    const AccuracyMetrics metrics =
        ComputeAccuracy(truths[static_cast<size_t>(f)], approx);
    std::printf("%-12s precision %.3f  recall %.3f  bloat %.1f%%  "
                "(%d hulls)\n",
                std::string(program->file_name(f)).c_str(), metrics.precision,
                metrics.recall,
                100.0 * BloatFraction(program->file_shape(f), approx),
                result.per_file_carve_stats[static_cast<size_t>(f)]
                    .final_hulls);
  }
  return 0;
}

int CmdEvaluate(std::vector<std::string> args) {
  const uint64_t seed = SeedFrom(&args);
  const bool map = TakeFlag(&args, "--map");
  int jobs = 0;
  int shards = 1;
  int64_t max_evals = 0;
  if (!JobsFrom(&args, &jobs) || !ShardsFrom(&args, &shards) ||
      !MaxEvalsFrom(&args, &max_evals) || args.size() != 1) {
    return UsageFor("evaluate");
  }
  if (std::unique_ptr<MultiFileProgram> multi =
          CreateMultiFileProgram(args[0]);
      multi != nullptr) {
    return CmdEvaluateMultiFile(std::move(multi), seed, jobs, shards,
                                max_evals);
  }
  std::unique_ptr<Program> program = CreateProgram(args[0]);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program: %s\n", args[0].c_str());
    return 1;
  }
  KondoConfig config = ScaledKondoConfig(program->data_shape());
  config.rng_seed = seed;
  config.jobs = jobs;
  config.fuzz.max_evals = max_evals;
  if (shards > 1) {
    // Route through the chunk-range splitter; the merged approximation is
    // bit-identical to the unsharded pipeline's.
    const IndexSet truth = program->GroundTruth();
    const Shape shape = program->data_shape();
    const SingleFileProgramAdapter adapter(std::move(program));
    config.shards = shards;
    const MultiKondoResult result = RunMultiFileKondo(adapter, config);
    const IndexSet& approx = result.per_file_approx[0];
    const AccuracyMetrics metrics = ComputeAccuracy(truth, approx);
    std::printf("fuzz:  %d evaluations (%d useful) across %d shards, "
                "stopped by %s\n",
                result.fuzz_stats.evaluations,
                result.fuzz_stats.useful_evaluations, shards,
                StopReason(result.fuzz_stats));
    std::printf("precision %.3f  recall %.3f  bloat %.1f%%  (%d hulls)\n",
                metrics.precision, metrics.recall,
                100.0 * BloatFraction(shape, approx),
                result.per_file_carve_stats[0].final_hulls);
    if (map) {
      std::printf("%s", RenderComparison(truth, approx).c_str());
    }
    return 0;
  }
  const KondoResult result = KondoPipeline(config).Run(*program);
  const AccuracyMetrics metrics =
      ComputeAccuracy(program->GroundTruth(), result.approx);
  std::printf("%s", FormatCampaignReport(result, metrics).c_str());
  std::printf("bloat identified: %.1f%%\n",
              100.0 * BloatFraction(program->data_shape(), result.approx));
  if (map) {
    std::printf("%s",
                RenderComparison(program->GroundTruth(), result.approx)
                    .c_str());
  }
  return 0;
}

int CmdFuzz(std::vector<std::string> args) {
  const std::string out_path = TakeFlagValue(&args, "--out");
  const std::string resume_path = TakeFlagValue(&args, "--resume");
  const uint64_t seed = SeedFrom(&args);
  int jobs = 0;
  int shards = 1;
  int64_t max_evals = 0;
  int64_t max_iter = 0;
  if (!JobsFrom(&args, &jobs) || !ShardsFrom(&args, &shards) ||
      !MaxEvalsFrom(&args, &max_evals) || !MaxIterFrom(&args, &max_iter) ||
      args.size() != 1 || out_path.empty()) {
    return UsageFor("fuzz");
  }
  std::unique_ptr<Program> program = CreateProgram(args[0]);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program: %s\n", args[0].c_str());
    return 1;
  }
  const Shape shape = program->data_shape();
  KondoConfig config = ScaledKondoConfig(shape);
  config.rng_seed = seed;
  config.jobs = jobs;
  config.fuzz.max_evals = max_evals;
  if (max_iter > 0) {
    config.fuzz.max_iter = static_cast<int>(max_iter);
  }

  FuzzResult result;
  if (shards > 1) {
    // Sharded campaign (in memory): the merge reconstitutes the exact
    // serial FuzzResult — seeds from the replicated schedule, discovered
    // set as the union over the shard partition.
    const SingleFileProgramAdapter adapter(std::move(program));
    ShardOptions options;
    options.shards = shards;
    StatusOr<ShardedRunResult> sharded =
        RunShardedCampaign(adapter, config, options);
    if (!sharded.ok()) {
      std::fprintf(stderr, "%s\n", sharded.status().ToString().c_str());
      return 1;
    }
    result.discovered = std::move(sharded->merged.per_file_discovered[0]);
    result.seeds = std::move(sharded->merged.seeds);
    result.stats = sharded->merged.fuzz_stats;
  } else {
    CampaignExecutor executor(jobs);
    FuzzSchedule schedule(program->param_space(), shape, config.fuzz, seed);
    result = schedule.Run(executor, MakeCandidateTest(*program));
  }
  CampaignState state = MakeCampaignState(shape, result);

  if (!resume_path.empty()) {
    StatusOr<CampaignState> previous = LoadCampaignState(resume_path);
    if (!previous.ok()) {
      std::fprintf(stderr, "%s\n", previous.status().ToString().c_str());
      return 1;
    }
    MergeCampaignState(&*previous, state);
    state = *std::move(previous);
  }
  if (Status status = SaveCampaignState(out_path, state); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("campaign: %d evaluations this run (stopped by %s); state now "
              "holds %zu seeds and %zu discovered offsets -> %s\n",
              result.stats.evaluations, StopReason(result.stats),
              state.seeds.size(), state.discovered.size(), out_path.c_str());
  return 0;
}

int CmdCarve(std::vector<std::string> args) {
  const std::string state_path = TakeFlagValue(&args, "--state");
  const std::string center = TakeFlagValue(&args, "--center");
  const std::string boundary = TakeFlagValue(&args, "--boundary");
  if (args.size() != 1 || state_path.empty()) {
    return UsageFor("carve");
  }
  const std::unique_ptr<Program> program = CreateProgram(args[0]);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program: %s\n", args[0].c_str());
    return 1;
  }
  StatusOr<CampaignState> state = LoadCampaignState(state_path);
  if (!state.ok()) {
    std::fprintf(stderr, "%s\n", state.status().ToString().c_str());
    return 1;
  }
  if (!(state->shape == program->data_shape())) {
    std::fprintf(stderr, "campaign shape %s does not match program %s\n",
                 state->shape.ToString().c_str(),
                 program->data_shape().ToString().c_str());
    return 1;
  }
  CarveConfig config = ScaledKondoConfig(program->data_shape()).carve;
  if (!center.empty()) {
    config.center_d_thresh = std::atof(center.c_str());
  }
  if (!boundary.empty()) {
    config.boundary_d_thresh = std::atof(boundary.c_str());
  }
  CarveStats stats;
  const IndexSet approx =
      Carver(config).Carve(state->discovered, &stats).Rasterize();
  const AccuracyMetrics metrics =
      ComputeAccuracy(program->GroundTruth(), approx);
  std::printf("carved %d hulls from %zu discovered offsets (%d merges)\n",
              stats.final_hulls, state->discovered.size(),
              stats.merge_operations);
  std::printf("precision %.3f, recall %.3f, subset %lld of %lld\n",
              metrics.precision, metrics.recall,
              static_cast<long long>(metrics.approx_size),
              static_cast<long long>(
                  program->data_shape().NumElements()));
  return 0;
}

// ---------------------------------------------------------- provenance --

int CmdProvenanceCompact(std::vector<std::string> args) {
  const std::string block = TakeFlagValue(&args, "--block");
  if (args.size() != 2) {
    return UsageFor("provenance");
  }
  Kel2WriterOptions options;
  if (!block.empty()) {
    if (!ParseInt64(block, &options.events_per_block) ||
        options.events_per_block <= 0) {
      std::fprintf(stderr, "invalid --block value: %s\n", block.c_str());
      return 1;
    }
  }
  StatusOr<CompactStats> stats =
      CompactLineageStore(args[0], args[1], options);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("compacted %s -> %s: %lld events in %lld blocks, "
              "%lld -> %lld bytes (%.2fx smaller)\n",
              args[0].c_str(), args[1].c_str(),
              static_cast<long long>(stats->events),
              static_cast<long long>(stats->blocks),
              static_cast<long long>(stats->input_bytes),
              static_cast<long long>(stats->output_bytes), stats->Ratio());
  return 0;
}

int CmdProvenanceQuery(std::vector<std::string> args) {
  const std::string range = TakeFlagValue(&args, "--range");
  const std::string file = TakeFlagValue(&args, "--file");
  const bool runs_only = TakeFlag(&args, "--runs");
  if (args.size() != 1 || range.empty()) {
    return UsageFor("provenance");
  }
  int64_t begin = 0, end = 0;
  if (!ParseRange(range, &begin, &end)) {
    std::fprintf(stderr, "invalid --range (want A:B with A < B): %s\n",
                 range.c_str());
    return 1;
  }
  int64_t file_id = 1;
  if (!file.empty() && !ParseInt64(file, &file_id)) {
    std::fprintf(stderr, "invalid --file value: %s\n", file.c_str());
    return 1;
  }

  if (!IsKel2Store(args[0])) {
    // KEL1 has no block index: fall back to a full decode + filter.
    StatusOr<std::vector<Event>> events = ReadLineageStore(args[0]);
    if (!events.ok()) {
      std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
      return 1;
    }
    std::vector<int64_t> pids;
    int64_t matches = 0;
    for (const Event& event : *events) {
      if (event.IsDataAccess() && event.id.file_id == file_id &&
          event.offset < end && begin < event.offset + event.size) {
        ++matches;
        pids.push_back(event.id.pid);
        if (!runs_only) {
          std::printf("%s\n", event.ToString().c_str());
        }
      }
    }
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
    if (runs_only) {
      for (int64_t pid : pids) {
        std::printf("%lld\n", static_cast<long long>(pid));
      }
    }
    std::printf("%lld events, %zu runs in [%lld,%lld) — full scan of %zu "
                "events (KEL1 store has no block index)\n",
                static_cast<long long>(matches), pids.size(),
                static_cast<long long>(begin), static_cast<long long>(end),
                events->size());
    return 0;
  }

  StatusOr<Kel2Reader> reader = Kel2Reader::Open(args[0]);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  ProvenanceQuery query(&*reader);
  StatusOr<std::vector<Event>> events =
      query.EventsOverlapping(file_id, begin, end);
  if (!events.ok()) {
    std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
    return 1;
  }
  std::vector<int64_t> pids;
  for (const Event& event : *events) {
    pids.push_back(event.id.pid);
    if (!runs_only) {
      std::printf("%s\n", event.ToString().c_str());
    }
  }
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  if (runs_only) {
    for (int64_t pid : pids) {
      std::printf("%lld\n", static_cast<long long>(pid));
    }
  }
  const ProvenanceQueryStats& stats = query.stats();
  std::printf("%zu events, %zu runs in [%lld,%lld) — decoded %lld of %lld "
              "blocks (%lld skipped in-situ)\n",
              events->size(), pids.size(), static_cast<long long>(begin),
              static_cast<long long>(end),
              static_cast<long long>(stats.blocks_decoded),
              static_cast<long long>(reader->NumBlocks()),
              static_cast<long long>(stats.blocks_skipped));
  return 0;
}

int CmdProvenanceStats(const std::string& path) {
  StatusOr<int64_t> file_bytes = FileSizeBytes(path);
  if (!file_bytes.ok()) {
    std::fprintf(stderr, "%s\n", file_bytes.status().ToString().c_str());
    return 1;
  }
  if (!IsKel2Store(path)) {
    StatusOr<std::vector<Event>> events = ReadLineageStore(path);
    if (!events.ok()) {
      std::fprintf(stderr, "%s\n", events.status().ToString().c_str());
      return 1;
    }
    std::printf("KEL1 store: %zu events, %lld bytes (40 bytes/event "
                "fixed)\n",
                events->size(), static_cast<long long>(*file_bytes));
    return 0;
  }
  StatusOr<Kel2Reader> reader = Kel2Reader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  std::printf("KEL2 store: %lld events in %lld blocks, %lld bytes\n",
              static_cast<long long>(reader->NumEvents()),
              static_cast<long long>(reader->NumBlocks()),
              static_cast<long long>(*file_bytes));
  if (reader->NumEvents() > 0) {
    std::printf("density:    %.2f bytes/event (vs 40 in KEL1, %.2fx "
                "smaller)\n",
                static_cast<double>(reader->BlockBytes()) /
                    static_cast<double>(reader->NumEvents()),
                40.0 * static_cast<double>(reader->NumEvents()) /
                    static_cast<double>(reader->BlockBytes()));
  }
  ProvenanceQuery query(&*reader);
  // Distinct file ids are bounded by the per-block ranges; collect them
  // from the descriptors instead of decoding payloads.
  std::vector<int64_t> file_ids;
  for (const Kel2BlockInfo& block : reader->blocks()) {
    for (int64_t f = block.min_file_id; f <= block.max_file_id; ++f) {
      file_ids.push_back(f);
    }
  }
  std::sort(file_ids.begin(), file_ids.end());
  file_ids.erase(std::unique(file_ids.begin(), file_ids.end()),
                 file_ids.end());
  for (int64_t file_id : file_ids) {
    StatusOr<std::map<int64_t, int64_t>> coverage =
        query.PerRunCoverage(file_id);
    if (!coverage.ok()) {
      std::fprintf(stderr, "%s\n", coverage.status().ToString().c_str());
      return 1;
    }
    for (const auto& [pid, bytes] : *coverage) {
      std::printf("file %lld run %lld: %lld distinct bytes accessed\n",
                  static_cast<long long>(file_id),
                  static_cast<long long>(pid),
                  static_cast<long long>(bytes));
    }
  }
  return 0;
}

int CmdProvenance(std::vector<std::string> args) {
  if (args.empty()) {
    return UsageFor("provenance");
  }
  const std::string sub = args[0];
  args.erase(args.begin());
  if (sub == "compact") {
    return CmdProvenanceCompact(std::move(args));
  }
  if (sub == "query") {
    return CmdProvenanceQuery(std::move(args));
  }
  if (sub == "stats" && args.size() == 1) {
    return CmdProvenanceStats(args[0]);
  }
  return UsageFor("provenance");
}

/// Outcome of pulling `--socket PATH` / `--port N` out of an argument
/// list. Exactly one must be given; a malformed port is a usage error.
bool AddressFrom(std::vector<std::string>* args, SocketAddress* address) {
  const std::string socket_path = TakeFlagValue(args, "--socket");
  int64_t port = 0;
  if (TakePositiveInt(args, "--port", &port) == FlagParse::kBad) {
    return false;
  }
  if (socket_path.empty() == (port == 0)) {
    std::fprintf(stderr, "want exactly one of --socket PATH or --port N\n");
    return false;
  }
  if (!socket_path.empty()) {
    address->unix_path = socket_path;
  } else {
    if (port > 65535) {
      std::fprintf(stderr, "invalid --port value (want 1..65535): %lld\n",
                   static_cast<long long>(port));
      return false;
    }
    address->port = static_cast<int>(port);
  }
  return true;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void ServeSignalHandler(int /*signum*/) { g_serve_stop = 1; }

int CmdServe(std::vector<std::string> args) {
  ServeOptions options;
  if (!AddressFrom(&args, &options.address)) {
    return UsageFor("serve");
  }
  const std::string pool = TakeFlagValue(&args, "--pool");
  if (!pool.empty()) {
    options.pool_root = pool;
  }
  int jobs = 0;
  if (!JobsFrom(&args, &jobs)) {
    return UsageFor("serve");
  }
  options.jobs = jobs;
  int64_t cache_mb = 0, max_inflight = 0, queue = 0;
  if (TakePositiveInt(&args, "--cache-mb", &cache_mb) == FlagParse::kBad ||
      TakePositiveInt(&args, "--max-inflight", &max_inflight) ==
          FlagParse::kBad ||
      TakePositiveInt(&args, "--queue", &queue) == FlagParse::kBad) {
    return UsageFor("serve");
  }
  if (cache_mb > 0) options.cache_bytes = cache_mb << 20;
  if (max_inflight > 0) {
    options.max_inflight = static_cast<int>(max_inflight);
  }
  if (queue > 0) options.queue_capacity = static_cast<int>(queue);
  if (!args.empty()) {
    return UsageFor("serve");
  }

  KondoServer server(options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s (pool %s, %d jobs)\n",
              server.bound_address().ToString().c_str(),
              options.pool_root.c_str(), options.jobs);
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGTERM, ServeSignalHandler);
  std::signal(SIGINT, ServeSignalHandler);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const ServeStatsSnapshot stats = server.Stats();
  std::printf("shutdown: %lld sessions, %lld requests, cache %lld/%lld "
              "hit/miss, campaigns %lld completed %lld failed %lld "
              "rejected\n",
              static_cast<long long>(stats.sessions_accepted),
              static_cast<long long>(stats.requests_total),
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses),
              static_cast<long long>(stats.campaigns_completed),
              static_cast<long long>(stats.campaigns_failed),
              static_cast<long long>(stats.campaigns_rejected));
  return 0;
}

/// A fleet worker process: binds, serves shard campaigns until SIGTERM or
/// SIGINT, then drains and reports. `debloat --workers N` spawns exactly
/// this command; operators run it by hand for `--connect` fleets.
int CmdWorker(std::vector<std::string> args) {
  FleetWorkerOptions options;
  if (!AddressFrom(&args, &options.address)) {
    return UsageFor("worker");
  }
  const std::string scratch = TakeFlagValue(&args, "--scratch");
  if (!scratch.empty()) {
    options.scratch_dir = scratch;
  }
  int jobs = 0;
  if (!JobsFrom(&args, &jobs) || !args.empty()) {
    return UsageFor("worker");
  }
  options.jobs = jobs;

  FleetWorker worker(options);
  const Status started = worker.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("worker listening on %s (scratch %s, %d jobs)\n",
              worker.bound_address().ToString().c_str(),
              options.scratch_dir.c_str(), options.jobs);
  std::fflush(stdout);

  g_serve_stop = 0;
  std::signal(SIGTERM, ServeSignalHandler);
  std::signal(SIGINT, ServeSignalHandler);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  worker.Stop();
  std::printf("worker shutdown: %lld shard(s) served\n",
              static_cast<long long>(worker.shards_served()));
  return 0;
}

int CmdClientFetch(std::vector<std::string> args) {
  SocketAddress address;
  const std::string range = TakeFlagValue(&args, "--range");
  if (!AddressFrom(&args, &address) || args.size() != 1 || range.empty()) {
    return UsageFor("client");
  }
  FetchSubsetRequest request;
  request.artifact = args[0];
  if (!ParseRange(range, &request.begin, &request.end)) {
    std::fprintf(stderr, "invalid --range (want A:B with A < B): %s\n",
                 range.c_str());
    return 1;
  }
  StatusOr<std::unique_ptr<KpcClient>> client = KpcClient::Connect(address);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  StatusOr<FetchSubsetResponse> response = (*client)->FetchSubset(request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  size_t value_pos = 0;
  for (size_t i = 0; i < response->present.size(); ++i) {
    const long long linear = static_cast<long long>(request.begin) +
                             static_cast<long long>(i);
    if (response->present[i] != 0) {
      std::printf("%lld: %.17g\n", linear, response->values[value_pos++]);
    } else {
      std::printf("%lld: (null)\n", linear);
    }
  }
  std::printf("fetched [%lld,%lld) of %s: %zu present of %zu "
              "(fingerprint %lld bytes crc %08x)\n",
              static_cast<long long>(request.begin),
              static_cast<long long>(request.end), request.artifact.c_str(),
              response->values.size(), response->present.size(),
              static_cast<long long>(response->fingerprint_bytes),
              response->fingerprint_crc);
  return 0;
}

int CmdClientQuery(std::vector<std::string> args) {
  SocketAddress address;
  const std::string range = TakeFlagValue(&args, "--range");
  const std::string file = TakeFlagValue(&args, "--file");
  const bool runs_only = TakeFlag(&args, "--runs");
  if (!AddressFrom(&args, &address) || args.size() != 1 || range.empty()) {
    return UsageFor("client");
  }
  QueryRequest request;
  request.store = args[0];
  request.runs_only = runs_only ? 1 : 0;
  if (!ParseRange(range, &request.begin, &request.end)) {
    std::fprintf(stderr, "invalid --range (want A:B with A < B): %s\n",
                 range.c_str());
    return 1;
  }
  if (!file.empty() && !ParseInt64(file, &request.file_id)) {
    std::fprintf(stderr, "invalid --file value: %s\n", file.c_str());
    return 1;
  }
  StatusOr<std::unique_ptr<KpcClient>> client = KpcClient::Connect(address);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  StatusOr<QueryResult> result = (*client)->QueryProvenance(request);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  for (const Event& event : result->events) {
    std::printf("%s\n", event.ToString().c_str());
  }
  if (runs_only) {
    for (int64_t pid : result->done.runs) {
      std::printf("%lld\n", static_cast<long long>(pid));
    }
  }
  std::printf("%lld events, %zu runs in [%lld,%lld) — decoded %lld of %lld "
              "blocks (%lld skipped in-situ)\n",
              static_cast<long long>(result->done.events_total),
              result->done.runs.size(),
              static_cast<long long>(request.begin),
              static_cast<long long>(request.end),
              static_cast<long long>(result->done.blocks_decoded),
              static_cast<long long>(result->done.blocks_considered),
              static_cast<long long>(result->done.blocks_skipped));
  return 0;
}

int CmdClientSubmit(std::vector<std::string> args) {
  SocketAddress address;
  SubmitRequest request;
  request.seed = static_cast<int64_t>(SeedFrom(&args));
  if (!MaxEvalsFrom(&args, &request.max_evals) ||
      !MaxIterFrom(&args, &request.max_iter) ||
      !AddressFrom(&args, &address) || args.size() != 1) {
    return UsageFor("client");
  }
  request.program = args[0];
  StatusOr<std::unique_ptr<KpcClient>> client = KpcClient::Connect(address);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  StatusOr<SubmitResponse> response = (*client)->SubmitCampaign(request);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  if (response->accepted == 0) {
    std::fprintf(stderr, "rejected: %s (queue depth %lld)\n",
                 response->message.c_str(),
                 static_cast<long long>(response->queue_depth));
    return 1;
  }
  std::printf("accepted job %lld (queue depth %lld)\n",
              static_cast<long long>(response->job_id),
              static_cast<long long>(response->queue_depth));
  return 0;
}

int CmdClientStats(std::vector<std::string> args) {
  SocketAddress address;
  if (!AddressFrom(&args, &address) || !args.empty()) {
    return UsageFor("client");
  }
  StatusOr<std::unique_ptr<KpcClient>> client = KpcClient::Connect(address);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  StatusOr<ServeStatsSnapshot> stats = (*client)->Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("cache: %lld hits, %lld misses, %lld evictions (%lld stale), "
              "%lld entries, %lld of %lld bytes\n",
              static_cast<long long>(stats->cache_hits),
              static_cast<long long>(stats->cache_misses),
              static_cast<long long>(stats->cache_evictions),
              static_cast<long long>(stats->cache_stale_evictions),
              static_cast<long long>(stats->cache_entries),
              static_cast<long long>(stats->cache_bytes),
              static_cast<long long>(stats->cache_capacity_bytes));
  std::printf("sessions: %lld accepted, %lld active, %lld requests, "
              "%lld protocol errors\n",
              static_cast<long long>(stats->sessions_accepted),
              static_cast<long long>(stats->sessions_active),
              static_cast<long long>(stats->requests_total),
              static_cast<long long>(stats->protocol_errors));
  std::printf("campaigns: %lld submitted, %lld rejected, %lld completed, "
              "%lld failed, queue %lld, in-flight %lld, %lld lineage "
              "bytes\n",
              static_cast<long long>(stats->campaigns_submitted),
              static_cast<long long>(stats->campaigns_rejected),
              static_cast<long long>(stats->campaigns_completed),
              static_cast<long long>(stats->campaigns_failed),
              static_cast<long long>(stats->campaign_queue_depth),
              static_cast<long long>(stats->campaign_inflight),
              static_cast<long long>(stats->lineage_bytes_written));
  std::printf("stores: %lld open, %lld reopened\n",
              static_cast<long long>(stats->stores_open),
              static_cast<long long>(stats->stores_reopened));
  for (int verb = 0; verb < kKpcVerbCount; ++verb) {
    const VerbLatency& latency = stats->verbs[verb];
    if (latency.count == 0) continue;
    std::printf("%s: %lld requests, mean %.1f us, max %lld us\n",
                KpcVerbName(verb), static_cast<long long>(latency.count),
                static_cast<double>(latency.total_micros) /
                    static_cast<double>(latency.count),
                static_cast<long long>(latency.max_micros));
  }
  return 0;
}

int CmdClient(std::vector<std::string> args) {
  if (args.empty()) {
    return UsageFor("client");
  }
  const std::string sub = args[0];
  args.erase(args.begin());
  if (sub == "fetch") {
    return CmdClientFetch(std::move(args));
  }
  if (sub == "query") {
    return CmdClientQuery(std::move(args));
  }
  if (sub == "submit") {
    return CmdClientSubmit(std::move(args));
  }
  if (sub == "stats") {
    return CmdClientStats(std::move(args));
  }
  return UsageFor("client");
}

int CmdBlast(std::vector<std::string> args) {
  BlastOptions options;
  const std::string artifact = TakeFlagValue(&args, "--artifact");
  const std::string range = TakeFlagValue(&args, "--range");
  int64_t clients = 0, requests = 0;
  if (!AddressFrom(&args, &options.address) || artifact.empty() ||
      TakePositiveInt(&args, "--clients", &clients) == FlagParse::kBad ||
      TakePositiveInt(&args, "--requests", &requests) == FlagParse::kBad ||
      !args.empty()) {
    return UsageFor("blast");
  }
  options.artifact = artifact;
  if (clients > 0) options.clients = static_cast<int>(clients);
  if (requests > 0) options.requests = static_cast<int>(requests);
  if (!range.empty() &&
      !ParseRange(range, &options.begin, &options.end)) {
    std::fprintf(stderr, "invalid --range (want A:B with A < B): %s\n",
                 range.c_str());
    return 1;
  }
  StatusOr<BlastReport> report = RunBlast(options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%d clients x %d requests against %s [%lld,%lld)\n",
              options.clients, options.requests, options.artifact.c_str(),
              static_cast<long long>(options.begin),
              static_cast<long long>(options.end));
  std::printf("%lld ok, %lld failed in %.3fs — %.0f req/s, %lld bytes, "
              "latency p50/p90/p99/max %lld/%lld/%lld/%lld us, "
              "responses %s\n",
              static_cast<long long>(report->ok_requests),
              static_cast<long long>(report->failed_requests),
              report->elapsed_seconds, report->throughput_rps,
              static_cast<long long>(report->bytes_received),
              static_cast<long long>(report->p50_micros),
              static_cast<long long>(report->p90_micros),
              static_cast<long long>(report->p99_micros),
              static_cast<long long>(report->max_micros),
              report->responses_identical ? "identical" : "DIVERGENT");
  return report->failed_requests == 0 && report->responses_identical ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "programs" && args.empty()) {
    return CmdPrograms();
  }
  if (command == "spec" && args.size() == 1) {
    return CmdSpec(args[0]);
  }
  if (command == "make-data") {
    return CmdMakeData(std::move(args));
  }
  if (command == "inspect" && args.size() == 1) {
    return CmdInspect(args[0]);
  }
  if (command == "debloat") {
    return CmdDebloat(std::move(args));
  }
  if (command == "replay") {
    return CmdReplay(std::move(args));
  }
  if (command == "evaluate") {
    return CmdEvaluate(std::move(args));
  }
  if (command == "fuzz") {
    return CmdFuzz(std::move(args));
  }
  if (command == "carve") {
    return CmdCarve(std::move(args));
  }
  if (command == "pack") {
    return CmdPack(std::move(args));
  }
  if (command == "unpack") {
    return CmdUnpack(std::move(args));
  }
  if (command == "repack") {
    return CmdRepack(std::move(args));
  }
  if (command == "pack-stats") {
    return CmdPackStats(std::move(args));
  }
  if (command == "provenance") {
    return CmdProvenance(std::move(args));
  }
  if (command == "serve") {
    return CmdServe(std::move(args));
  }
  if (command == "worker") {
    return CmdWorker(std::move(args));
  }
  if (command == "client") {
    return CmdClient(std::move(args));
  }
  if (command == "blast") {
    return CmdBlast(std::move(args));
  }
  return Usage();
}

}  // namespace
}  // namespace kondo::cli

int main(int argc, char** argv) { return kondo::cli::Main(argc, argv); }
