// kondo_lint — static analysis for Kondo's determinism & concurrency
// invariants.
//
// The binary tokenizes the source tree (comment/string-aware), walks the
// include graph to find everything a determinism-critical module depends
// on, and enforces the project rules R1-R6 (banned nondeterminism APIs,
// unordered-iteration hazards, suppressed IO status, unannotated mutexes,
// lock-order cycles / wait-while-holding, and wire-tainted lengths
// reaching allocation). See docs/STATIC_ANALYSIS.md for the rule
// catalogue and suppression policy.
//
//   kondo_lint --root . src                  # what CI runs
//   kondo_lint --rules R2 src/fuzz
//   kondo_lint --format=json --root . src    # machine-readable report
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <iostream>
#include <string>
#include <vector>

#include "lint/linter.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return kondo::lint::LintMain(args, std::cout, std::cerr);
}
