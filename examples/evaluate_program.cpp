// Evaluates Kondo on one registered program (or all): runs the pipeline,
// reports precision/recall against ground truth, bloat identified, and the
// missed-valuation rate.
//
// Usage: evaluate_program [PROGRAM|all] [rng_seed]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/kondo.h"
#include "core/metrics.h"
#include "workloads/registry.h"

namespace {

void Evaluate(const std::string& name, uint64_t seed) {
  using namespace kondo;
  std::unique_ptr<Program> program = CreateProgram(name);
  if (program == nullptr) {
    std::fprintf(stderr, "unknown program: %s\n", name.c_str());
    return;
  }
  // Length-valued knobs scale with the array extents (Fig. 5 defaults were
  // tuned for 128x128); for 128-sized programs this equals the defaults.
  KondoConfig config = ScaledKondoConfig(program->data_shape());
  config.rng_seed = seed;
  KondoPipeline pipeline(config);
  KondoResult result = pipeline.Run(*program);
  const AccuracyMetrics metrics =
      ComputeAccuracy(program->GroundTruth(), result.approx);
  const MissedAccessStats missed =
      ComputeMissedValuations(*program, result.approx);
  std::printf(
      "%-6s evals=%-5d useful=%-5d hulls=%-3d prec=%.3f recall=%.3f "
      "bloat=%.1f%% (gt %.1f%%) missed-valuations=%.2f%% "
      "t=%.2fs+%.2fs+%.2fs\n",
      name.c_str(), result.fuzz.stats.evaluations,
      result.fuzz.stats.useful_evaluations, result.carve_stats.final_hulls,
      metrics.precision, metrics.recall,
      100.0 * BloatFraction(program->data_shape(), result.approx),
      100.0 * BloatFraction(program->data_shape(), program->GroundTruth()),
      100.0 * missed.missed_fraction, result.fuzz_seconds,
      result.carve_seconds, result.rasterize_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  const uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  if (which == "all") {
    for (const std::string& name : kondo::AllProgramNames()) {
      Evaluate(name, seed);
    }
  } else {
    Evaluate(which, seed);
  }
  return 0;
}
