// Table III walk-through: Kondo on the two programs derived from real
// scientific applications (Tang et al.'s usage study) — Atmospheric River
// Detection (ARD) and Mass Spectrometry Imaging (MSI) — on scaled meshes
// that preserve the paper's subset fractions.
//
// Usage: real_apps [budget_seconds]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "baselines/brute_force.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  using namespace kondo;
  const double budget = argc > 1 ? std::atof(argv[1]) : 2.0;

  for (const char* name : {"ARD", "MSI"}) {
    std::unique_ptr<Program> program = CreateProgram(name);
    std::printf("=== %s — %s ===\n", name,
                std::string(program->description()).c_str());
    std::printf("mesh:    %s (%lld elements; 16-byte elements -> %.1f MB)\n",
                program->data_shape().ToString().c_str(),
                static_cast<long long>(
                    program->data_shape().NumElements()),
                static_cast<double>(
                    program->data_shape().NumElements() * 16) /
                    (1024 * 1024));
    std::printf("theta:   %s (%.0f valuations)\n",
                program->param_space().ToString().c_str(),
                program->param_space().NumValuations());

    const IndexSet& truth = program->GroundTruth();
    std::printf("subset:  %zu indices (%.2f%% of the mesh)\n", truth.size(),
                100.0 * static_cast<double>(truth.size()) /
                    static_cast<double>(
                        program->data_shape().NumElements()));

    // Kondo with mesh-scaled configuration.
    KondoConfig config = ScaledKondoConfig(program->data_shape());
    config.fuzz.max_iter = 4000;
    config.fuzz.max_seconds = budget;
    config.rng_seed = 1;
    const KondoResult result = KondoPipeline(config).Run(*program);
    const AccuracyMetrics kondo = ComputeAccuracy(truth, result.approx);
    std::printf("Kondo:   precision %.2f, recall %.2f (%d hulls, %.1fs)\n",
                kondo.precision, kondo.recall, result.carve_stats.final_hulls,
                result.fuzz_seconds + result.carve_seconds +
                    result.rasterize_seconds);
    std::printf("debloat: %.2f%% of the mesh eliminated\n",
                100.0 * BloatFraction(program->data_shape(), result.approx));

    // Brute force under the same budget.
    BruteForceConfig bf_config;
    bf_config.max_seconds = budget;
    bf_config.exec_overhead_micros = 200;  // Per-run process cost (§V-C).
    const BruteForceResult bf = RunBruteForce(*program, bf_config);
    const AccuracyMetrics bf_metrics = ComputeAccuracy(truth, bf.discovered);
    std::printf("BF:      precision %.2f, recall %.2f (%lld of %.0f runs)\n\n",
                bf_metrics.precision, bf_metrics.recall,
                static_cast<long long>(bf.runs),
                program->param_space().NumValuations());
  }
  std::printf("(paper: ARD Kondo 1&1 / BF 1&0.24, 97.20%% debloat;"
              " MSI Kondo 1&1 / BF 1&0.78, 96.24%% debloat)\n");
  return 0;
}
