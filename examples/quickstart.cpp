// Quickstart: debloat the Listing-1 cross-stencil program end to end.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Steps: instantiate the program, run the Kondo pipeline (fuzz -> carve),
// compare the approximated subset against the ground truth, package the
// debloated data file, and replay a run at the "user end".

#include <cstdio>

#include "array/data_array.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "core/runtime.h"
#include "workloads/registry.h"

int main() {
  using namespace kondo;

  // The containerized application: Listing 1's cross-stencil walk over a
  // 128x128 array with Θ = (stepX, stepY) ∈ [0,127]^2.
  std::unique_ptr<Program> program = CreateProgram("CS");
  std::printf("program: %s — %s\n", std::string(program->name()).c_str(),
              std::string(program->description()).c_str());
  std::printf("theta:   %s  (%.0f valuations)\n",
              program->param_space().ToString().c_str(),
              program->param_space().NumValuations());

  // Run Kondo with the paper's default configuration (Section V-B).
  KondoPipeline pipeline{KondoConfig{}};
  KondoResult result = pipeline.Run(*program);
  std::printf("fuzz:    %d iterations, %d evaluations (%d useful), %.2fs\n",
              result.fuzz.stats.iterations, result.fuzz.stats.evaluations,
              result.fuzz.stats.useful_evaluations, result.fuzz_seconds);
  std::printf("carve:   %d cells -> %d hulls after %d merges\n",
              result.carve_stats.num_cells, result.carve_stats.final_hulls,
              result.carve_stats.merge_operations);

  // Accuracy against the ground truth I_Θ.
  const IndexSet& truth = program->GroundTruth();
  const AccuracyMetrics metrics = ComputeAccuracy(truth, result.approx);
  std::printf("approx:  |I'_Θ| = %lld of |I| = %lld (truth %lld)\n",
              static_cast<long long>(metrics.approx_size),
              static_cast<long long>(program->data_shape().NumElements()),
              static_cast<long long>(metrics.truth_size));
  std::printf("quality: precision %.3f  recall %.3f\n", metrics.precision,
              metrics.recall);

  // Package D_Θ and replay a supported run against it.
  DataArray data(program->data_shape());
  data.FillPattern(/*seed=*/42);
  DebloatedArray debloated = PackageDebloated(data, result.approx);
  std::printf("package: %.1f%% smaller payload (%lld -> %lld bytes)\n",
              100.0 * debloated.SizeReductionFraction(),
              static_cast<long long>(debloated.OriginalPayloadBytes()),
              static_cast<long long>(debloated.DebloatedPayloadBytes()));

  DebloatRuntime runtime(std::move(debloated));
  const Status replay = runtime.ReplayRun(*program, ParamValue{1.0, 2.0});
  std::printf("replay:  stepX=1 stepY=2 -> %s (%lld reads, %lld misses)\n",
              replay.ToString().c_str(),
              static_cast<long long>(runtime.stats().reads),
              static_cast<long long>(runtime.stats().misses));
  return 0;
}
