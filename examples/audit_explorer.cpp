// Raw audit-substrate demo: multi-process syscall-style event streams, the
// overlap-merging of Definition 4's worked example, per-process interval
// B-tree lookups, and byte-offset -> index recovery through file metadata.

#include <cstdio>
#include <string>

#include "array/data_array.h"
#include "array/kdf_file.h"
#include "audit/event_log.h"
#include "audit/offset_mapper.h"
#include "audit/traced_file.h"

int main() {
  using namespace kondo;

  // --- the paper's worked example (Section IV-C) --------------------------
  std::printf("--- Definition 4 worked example ---\n");
  EventLog log;
  auto read_event = [](int64_t pid, int64_t offset, int64_t size) {
    Event event;
    event.id = EventId{pid, 1};
    event.type = EventType::kRead;
    event.offset = offset;
    event.size = size;
    return event;
  };
  for (const Event& event :
       {read_event(1, 0, 110), read_event(2, 70, 30), read_event(1, 130, 20),
        read_event(1, 90, 30)}) {
    std::printf("record %s\n", event.ToString().c_str());
    log.Record(event);
  }
  std::printf("merged accessed offsets: %s   (paper: (0,120) and (130,150))\n",
              log.AccessedRanges(1).ToString().c_str());
  std::printf("P1 only:                 %s\n",
              log.AccessedRangesForProcess(1, 1).ToString().c_str());
  std::printf("P2 only:                 %s\n\n",
              log.AccessedRangesForProcess(2, 1).ToString().c_str());

  // Per-process range lookup through the interval B-tree.
  std::printf("--- per-process offset-range lookup [80, 140) for P1 ---\n");
  for (const Event& event : log.LookupProcessRange(1, 1, 80, 140)) {
    std::printf("  hit %s\n", event.ToString().c_str());
  }

  // --- live interposition on a real file -----------------------------------
  std::printf("\n--- traced reads on a chunked KDF file ---\n");
  const std::string path = "/tmp/audit_explorer.kdf";
  DataArray array(Shape{8, 8}, DType::kFloat64);
  array.FillWith([](const Index& index) {
    return static_cast<double>(index[0] * 8 + index[1]);
  });
  if (!WriteKdfFile(path, array, LayoutKind::kChunked, {4, 4}).ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }

  EventLog live;
  StatusOr<TracedFile> file = TracedFile::Open(path, /*pid=*/100, 7, &live);
  if (!file.ok()) {
    std::fprintf(stderr, "open failed\n");
    return 1;
  }
  // Parent reads a row fragment; a "forked child" reads a column fragment.
  for (int64_t y = 2; y <= 5; ++y) {
    (void)file->ReadElement(Index{3, y});
  }
  file->SetPid(101);
  for (int64_t x = 0; x <= 3; ++x) {
    (void)file->ReadElement(Index{x, 6});
  }
  file->Close();

  for (const Event& event : live.events()) {
    std::printf("  %s\n", event.ToString().c_str());
  }

  // Recover the index subset from byte offsets via the file's metadata.
  OffsetMapper mapper(&file->reader().layout(),
                      file->reader().payload_offset());
  const IndexSet indices = mapper.IndicesForRanges(live.AccessedRanges(7));
  std::printf("\nrecovered %zu accessed indices:\n", indices.size());
  for (const Index& index : indices.ToIndices()) {
    std::printf("  %s = %.0f\n", index.ToString().c_str(), array.At(index));
  }
  std::remove(path.c_str());
  return 0;
}
