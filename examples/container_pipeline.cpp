// The full Fig. 2 / Fig. 3 container story, end to end:
//
//   1. parse Alice's Kondofile (environment, data deps, PARAM space),
//   2. build the data dependency as a real KDF file,
//   3. run audited debloat tests (ptrace-style interposition) under the
//      fuzz schedule, carve the observed offsets into hulls,
//   4. package the debloated payload that replaces the original file,
//   5. replay runs at Bob's end, including a deliberate out-of-Θ run that
//      triggers the data-missing exception.
//
// Usage: container_pipeline [workdir]

#include <cstdio>
#include <memory>
#include <string>

#include "array/data_array.h"
#include "array/kdf_file.h"
#include "core/container_spec.h"
#include "core/debloat_test.h"
#include "core/kondo.h"
#include "core/metrics.h"
#include "core/runtime.h"
#include "workloads/registry.h"

namespace {

constexpr char kKondofile[] = R"(
# Alice's container specification (cf. Fig. 2a)
FROM ubuntu:20.04
RUN apt-get install -y gcc
RUN mkdir /stencil
ADD ./fuji.kdf /stencil/fuji.kdf
ADD Stencil.c /stencil/crossStencil.c
PARAM [16-40, 16-40]
ENTRYPOINT ["/stencil/PRL"]
CMD [24, 30, /stencil/fuji.kdf]
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace kondo;
  const std::string workdir = argc > 1 ? argv[1] : "/tmp";

  // --- Alice's side -------------------------------------------------------
  std::printf("--- parsing Kondofile ---\n");
  StatusOr<ContainerSpec> spec = ParseContainerSpec(kKondofile);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec error: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  std::printf("base image:   %s\n", spec->base_image.c_str());
  std::printf("entrypoint:   %s\n", spec->entrypoint.c_str());
  std::printf("data deps:    %s\n", spec->DataDependencies()[0].c_str());
  std::printf("theta:        %s\n\n", spec->params.ToString().c_str());

  // The program advertised by the entrypoint (PRL's ring reader).
  std::unique_ptr<Program> program = CreateProgram("PRL");

  // Build the data dependency as a real file.
  const std::string data_path = workdir + "/fuji.kdf";
  DataArray array(program->data_shape(), DType::kFloat128);
  array.FillPattern(2024);
  if (Status status = WriteKdfFile(data_path, array); !status.ok()) {
    std::fprintf(stderr, "write error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("--- wrote %s (%lld bytes) ---\n\n", data_path.c_str(),
              static_cast<long long>(program->data_shape().NumElements() * 16 +
                                     24));

  // --- Kondo: audited fuzz + carve ----------------------------------------
  std::printf("--- running Kondo (audited debloat tests) ---\n");
  KondoConfig config;
  config.rng_seed = 7;
  KondoPipeline pipeline(config);
  const KondoResult result = pipeline.RunWithTest(
      MakeAuditedDebloatTest(*program, data_path), spec->params,
      program->data_shape());

  // Ground truth w.r.t. the *advertised* Θ: enumerate the spec's ranges.
  IndexSet advertised_truth(program->data_shape());
  for (int64_t w = 16; w <= 40; ++w) {
    for (int64_t h = 16; h <= 40; ++h) {
      advertised_truth.Union(program->AccessSet(
          {static_cast<double>(w), static_cast<double>(h)}));
    }
  }
  const AccuracyMetrics metrics =
      ComputeAccuracy(advertised_truth, result.approx);
  std::printf("evaluated %d seeds (%d useful), carved %d hulls\n",
              result.fuzz.stats.evaluations,
              result.fuzz.stats.useful_evaluations,
              result.carve_stats.final_hulls);
  std::printf("precision %.3f, recall %.3f\n\n", metrics.precision,
              metrics.recall);

  // --- packaging ----------------------------------------------------------
  DebloatedArray debloated = PackageDebloated(array, result.approx);
  const std::string debloated_path = workdir + "/fuji.kdd";
  if (Status status = debloated.WriteFile(debloated_path); !status.ok()) {
    std::fprintf(stderr, "package error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("--- packaged %s: %lld -> %lld bytes (%.1f%% smaller) ---\n\n",
              debloated_path.c_str(),
              static_cast<long long>(debloated.OriginalPayloadBytes()),
              static_cast<long long>(debloated.DebloatedPayloadBytes()),
              100.0 * debloated.SizeReductionFraction());

  // --- Bob's side ---------------------------------------------------------
  std::printf("--- user-end replay ---\n");
  StatusOr<DebloatedArray> shipped = DebloatedArray::ReadFile(debloated_path);
  if (!shipped.ok()) {
    std::fprintf(stderr, "read error: %s\n",
                 shipped.status().ToString().c_str());
    return 1;
  }
  DebloatRuntime runtime(*std::move(shipped));

  // The CMD run advertised in the spec (inside Θ).
  const Status in_theta = runtime.ReplayRun(*program, {24.0, 30.0});
  std::printf("CMD [24, 30]:     %s (%lld reads, %lld misses)\n",
              in_theta.ToString().c_str(),
              static_cast<long long>(runtime.stats().reads),
              static_cast<long long>(runtime.stats().misses));

  // A run outside the advertised Θ: ring extent 56 is valid program input
  // but the creator only advertised extents up to 40, so its offsets were
  // never containerized — Kondo's run-time raises the data-missing
  // exception and logs the offsets a remote fetcher would pull (§VI).
  runtime.ResetStats();
  const Status out_of_theta = runtime.ReplayRun(*program, {56.0, 56.0});
  std::printf("run [56, 56]:     %s (%lld misses logged for remote fetch)\n",
              out_of_theta.ToString().c_str(),
              static_cast<long long>(runtime.stats().misses));
  return 0;
}
